// scale_async — the async engine at cloud scale: P workers in the hundreds to
// thousands on ClusterSpec::Cloud(N) topologies, P >> slots.
//
// The ROADMAP's "Scale experiments" item: the paper's Discussion argues the
// barrier-free advantage *compounds* with cluster size (CluE-scale, heavy
// network delays during copying and merging), and related systems work (ASAP,
// "More Iterations per Second, Same Quality") measures the same curve. This
// bench makes the regime cheap to explore — it exists because the simulator's
// fluid network now rebalances incrementally (O(endpoint degree) per flow
// event instead of O(total flows)), which is what makes P = 1024 tractable.
//
// Sweeps PageRank, SSSP and K-Means at P in {64, 256, 1024, 4096} (window
// set by AMR_MIN_P / AMR_MAX_P — CI smokes P = 64, and the release job smokes
// the P = 4096 cell alone), each P on Cloud(max(8, P/8)) so partitions
// outnumber slots 4:1 throughout. Each cell runs the async engine twice:
// batch coalescing off and on, both with the adaptive token backoff (a fixed
// inter-circuit pause would either spam P-hop token circuits or stall small
// runs). Iteration caps keep cells bounded; converged flags are reported, not
// assumed.
//
// P >= 4096 is the speed tier: those cells run with QueueMode::kCalendar and
// DesMode::kSharded (both differentially pinned bit-identical to the exact
// defaults by tests/test_sharded.cpp), and only the coalesced PageRank
// variant runs — the SSSP and K-Means cells, and PageRank's uncoalesced
// variant, are SKIPPED and logged explicitly, not silently: at ~12 vertices
// per partition the apps' fixed per-iteration engine traffic dwarfs any
// convergence signal, and the off-vs-on crossover is already established on
// the 64-1024 rows at ~9x the cell cost. Every cell's JSON records which
// modes produced it (queue_mode, des_mode).
//
// Output: human-readable rows to stderr, one JSON line per (app, P) cell to
// stdout — append them to BENCH_scale_async.json. Schema (numbers):
//
//   {"bench":"scale_async","schema_version":V,"app":A,"P":N,"nodes":N,
//    "scale":S,"seed":N,"queue_mode":M,"des_mode":M,
//    "rate_tolerance":T,"off_skipped":B,
//    "off_wall_s":T,"off_virtual_s":T,"off_iters":N,"off_flows":N,
//    "off_net_bytes":N,"off_converged":B,
//    "on_wall_s":T,"on_virtual_s":T,"on_iters":N,"on_flows":N,
//    "on_net_bytes":N,"on_converged":B,
//    "on_coalesced_batches":N,"on_coalesced_bytes_saved":N,
//    "off_rebalances":N,"off_rate_updates":N,"on_rebalances":N,
//    "on_rate_updates":N,"net_busy_s":T,"token_circuits":N}
//
// off_skipped marks cells whose coalescing-off variant was not run: K-Means
// at P = 1024 broadcasts to 1023 peers per worker per iteration, and without
// coalescing that holds ~P^2 concurrent flows in the fluid model — the
// infeasibility coalescing exists to remove, not a measurement.
//
// Honours AMR_SCALE / AMR_SEED / AMR_MIN_P / AMR_MAX_P.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/kmeans.hpp"
#include "bench_common.hpp"
#include "graph/partitioner.hpp"

using namespace asyncmr;

namespace {

double WallSeconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct CellRun {
  double wall_s = 0.0;
  async::AsyncResult stats;
  bool converged = false;
  net::NetworkStats net;
};

struct Cell {
  CellRun off;  // coalescing off
  CellRun on;   // coalescing on
  bool off_skipped = false;
};

/// Relative fluid-model rate tolerance for this sweep (see
/// TopologyConfig::fluid_rate_tolerance): with thousands of concurrent flows
/// a single start/complete moves a node's fair share by a fraction of a
/// percent, and re-rating every incident flow for that is what made large P
/// quadratic. 5% rate staleness is far below the cost-model's own noise
/// (stragglers, jitter) and keeps rebalance work amortized O(1) per event.
constexpr double kRateTolerance = 0.05;

/// From this P up, cells run the speed tier: calendar far store + sharded
/// compute offload. Both are pinned bit-identical to the exact defaults by
/// tests/test_sharded.cpp, so the trajectory stays comparable across modes.
constexpr uint32_t kPerfModeP = 4096;

bool UsesPerfModes(uint32_t p) { return p >= kPerfModeP; }

cluster::ClusterSpec CloudSpecFor(uint32_t p) {
  auto spec = cluster::ClusterSpec::Cloud(std::max<uint32_t>(8, p / 8));
  spec.topology.fluid_rate_tolerance = kRateTolerance;
  if (UsesPerfModes(p)) spec.queue_mode = sim::QueueMode::kCalendar;
  return spec;
}

async::EngineTuning Tuning(bool coalesce, uint32_t p) {
  async::EngineTuning t;
  t.coalesce_batches = coalesce;
  t.adaptive_token_backoff = true;
  if (UsesPerfModes(p)) t.des_mode = async::DesMode::kSharded;
  return t;
}

void PrintCell(const char* app, uint32_t p, const Cell& c,
               const char* off_skip_reason = "P^2 flows without coalescing") {
  if (c.off_skipped) {
    std::fprintf(
        stderr,
        "%-9s P=%-5u off: skipped (%s) | on: "
        "%7.2fs wall %9.1fs virt %8llu iters %9llu flows (%llu coalesced) "
        "%s\n",
        app, p, off_skip_reason, c.on.wall_s, c.on.stats.seconds(),
        static_cast<unsigned long long>(c.on.stats.total_iterations),
        static_cast<unsigned long long>(c.on.stats.update_batches),
        static_cast<unsigned long long>(c.on.stats.coalesced_batches),
        c.on.converged ? "conv" : "CAP");
    return;
  }
  std::fprintf(stderr,
               "%-9s P=%-5u off: %7.2fs wall %9.1fs virt %8llu iters %9llu "
               "flows %s | on: %7.2fs wall %9.1fs virt %8llu iters %9llu "
               "flows (%llu coalesced) %s\n",
               app, p, c.off.wall_s, c.off.stats.seconds(),
               static_cast<unsigned long long>(c.off.stats.total_iterations),
               static_cast<unsigned long long>(c.off.stats.update_batches),
               c.off.converged ? "conv" : "CAP", c.on.wall_s,
               c.on.stats.seconds(),
               static_cast<unsigned long long>(c.on.stats.total_iterations),
               static_cast<unsigned long long>(c.on.stats.update_batches),
               static_cast<unsigned long long>(c.on.stats.coalesced_batches),
               c.on.converged ? "conv" : "CAP");
}

void EmitJson(const char* app, uint32_t p, const BenchOptions& opts,
              const Cell& c) {
  std::printf(
      "{\"bench\":\"scale_async\",\"schema_version\":%d,\"app\":\"%s\","
      "\"P\":%u,\"nodes\":%u,"
      "\"scale\":%g,\"seed\":%llu,"
      "\"queue_mode\":\"%s\",\"des_mode\":\"%s\","
      "\"rate_tolerance\":%g,\"off_skipped\":%d,"
      "\"off_wall_s\":%.3f,\"off_virtual_s\":%.3f,\"off_iters\":%llu,"
      "\"off_flows\":%llu,\"off_net_bytes\":%llu,\"off_converged\":%d,"
      "\"on_wall_s\":%.3f,\"on_virtual_s\":%.3f,\"on_iters\":%llu,"
      "\"on_flows\":%llu,\"on_net_bytes\":%llu,\"on_converged\":%d,"
      "\"on_coalesced_batches\":%llu,\"on_coalesced_bytes_saved\":%llu,"
      "\"off_rebalances\":%llu,\"off_rate_updates\":%llu,"
      "\"on_rebalances\":%llu,\"on_rate_updates\":%llu,"
      "\"net_busy_s\":%.3f,\"token_circuits\":%u}\n",
      bench::kBenchSchemaVersion, app, p, CloudSpecFor(p).num_nodes(), opts.scale,
      static_cast<unsigned long long>(opts.seed),
      UsesPerfModes(p) ? "calendar" : "heap",
      UsesPerfModes(p) ? "sharded" : "serial", kRateTolerance,
      c.off_skipped ? 1 : 0, c.off.wall_s,
      c.off.stats.seconds(),
      static_cast<unsigned long long>(c.off.stats.total_iterations),
      static_cast<unsigned long long>(c.off.stats.update_batches),
      static_cast<unsigned long long>(c.off.stats.bytes_sent),
      c.off.converged ? 1 : 0, c.on.wall_s, c.on.stats.seconds(),
      static_cast<unsigned long long>(c.on.stats.total_iterations),
      static_cast<unsigned long long>(c.on.stats.update_batches),
      static_cast<unsigned long long>(c.on.stats.bytes_sent),
      c.on.converged ? 1 : 0,
      static_cast<unsigned long long>(c.on.stats.coalesced_batches),
      static_cast<unsigned long long>(c.on.stats.coalesced_bytes_saved),
      static_cast<unsigned long long>(c.off.net.rebalances),
      static_cast<unsigned long long>(c.off.net.flow_rate_updates),
      static_cast<unsigned long long>(c.on.net.rebalances),
      static_cast<unsigned long long>(c.on.net.flow_rate_updates),
      c.on.net.busy_seconds, c.on.stats.token_circuits);
}

/// Runs one (app, P) cell: the same workload with coalescing off then on.
/// `skip_off` drops the off variant — the all-to-all broadcast at P = 1024
/// puts ~P^2 concurrent flows in the fluid model without coalescing, which
/// is past what flow-granular simulation (or a real 1 Gb NIC) can carry;
/// making that cell *feasible* is the coalescing result, not a comparison.
/// `obs` (when non-null) attaches only to the coalescing-on variant so the
/// trace holds one run, not two overlaid timelines.
template <typename RunFn>
Cell RunCell(uint32_t p, RunFn&& run, bool skip_off = false,
             obs::Observability obs = {}) {
  Cell cell;
  cell.off_skipped = skip_off;
  for (const bool coalesce : {false, true}) {
    if (!coalesce && skip_off) continue;
    CellRun& r = coalesce ? cell.on : cell.off;
    cluster::SimCluster sim(CloudSpecFor(p));
    auto tuning = Tuning(coalesce, p);
    if (coalesce) tuning.obs = obs;
    r.wall_s = WallSeconds([&] { r.converged = run(sim, tuning, &r.stats); });
    r.net = sim.network().stats();
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);
  bench::ObsSession obs_session(opts);
  const uint32_t max_p =
      static_cast<uint32_t>(GetEnvInt("AMR_MAX_P", 1024));
  const uint32_t min_p = static_cast<uint32_t>(GetEnvInt("AMR_MIN_P", 0));
  std::vector<uint32_t> sweep;
  for (uint32_t p : {64u, 256u, 1024u, 4096u}) {
    if (p >= min_p && p <= max_p) sweep.push_back(p);
  }
  std::fprintf(stderr,
               "=== scale_async — P >> slots on Cloud(N) topologies ===\n"
               "scale: %.2fx (AMR_SCALE), seed %llu; Cloud(max(8, P/8)): 20 "
               "nodes/rack, 0.25x oversubscribed inter-rack, 2 slots/node\n",
               opts.scale, static_cast<unsigned long long>(opts.seed));
  std::fprintf(stderr, "P sweep:");
  for (uint32_t p : sweep) std::fprintf(stderr, " %u", p);
  std::fprintf(stderr,
               " (AMR_MIN_P=%u, AMR_MAX_P=%u), both coalescing variants; "
               "P >= %u runs calendar + sharded\n\n",
               min_p, max_p, kPerfModeP);

  // One shared power-law graph, sized so the largest P still gets non-trivial
  // partitions (~48 vertices each at P = 1024, scale 1) — the regime where
  // iteration compute is cheap and the network/engine overheads dominate,
  // which is exactly what this bench stresses.
  graph::PrefAttachConfig gc;
  gc.num_vertices = static_cast<graph::VertexId>(opts.Scaled(50'000, 8'000));
  gc.num_in = 3;
  gc.num_out = 3;
  gc.locality_window = std::max<graph::VertexId>(8, gc.num_vertices / 1000);
  gc.max_edge_age = 4 * gc.locality_window;
  gc.seed = opts.seed;
  const auto g = graph::PreferentialAttachment(gc);
  const auto gw = graph::WithRandomWeights(g, 1.0, 10.0, opts.seed + 3);
  std::fprintf(stderr, "graph: %s\n", g.Describe().c_str());

  // K-Means data: fewer points and dimensions than the paper's census sample
  // — at P = 1024 a partition holds only dozens of points, so the cell's cost
  // is the all-to-all partial exchange (what this bench measures), not the
  // assignment arithmetic or the partial payload size.
  apps::CensusLikeConfig data_config;
  data_config.num_points = static_cast<uint32_t>(opts.Scaled(30'000, 6'000));
  data_config.dims = 16;
  data_config.planted_clusters = 8;
  data_config.seed = opts.seed;
  const auto data = apps::GenerateCensusLike(data_config);

  for (uint32_t p : sweep) {
    const auto part = graph::MultilevelPartition(g, p, opts.seed);

    // PageRank: boundary-push over the partition adjacency. The largest-P
    // PageRank cell is the traced run when --trace-out/--metrics-out is set
    // (one representative run per binary; P=64 under AMR_MAX_P=64 in CI).
    {
      apps::PageRankConfig pr;
      // Worker cap is 10x the global cap. Engine overhead per cell grows
      // ~linearly in P x iterations regardless of AMR_SCALE (the caps, not
      // convergence, end these cells), so the speed tier trims the budget to
      // keep the P = 4096 row bounded — it measures engine throughput, and
      // ~160k worker iterations are plenty of signal.
      pr.max_global_iterations = UsesPerfModes(p) ? 10 : 40;
      const bool traced_cell = p == sweep.back();
      // At the speed tier the off variant is skipped like K-Means at 1024:
      // the off-vs-on crossover is established on the 64-1024 rows, and the
      // uncoalesced variant costs ~9x the cell (P=1024: 290s vs 33s) to
      // re-measure it. Logged, not silent.
      const bool skip_off = UsesPerfModes(p);
      const Cell cell = RunCell(
          p,
          [&](cluster::SimCluster& sim, const async::EngineTuning& tuning,
              async::AsyncResult* stats) {
            apps::PageRankConfig config = pr;
            config.async_tuning = tuning;
            return apps::AsyncPageRank(sim, g, part, config,
                                       async::kUnboundedStaleness, stats)
                .converged;
          },
          skip_off,
          traced_cell ? obs_session.View() : obs::Observability{});
      PrintCell("pagerank", p, cell,
                "speed tier measures the coalesced configuration only");
      EmitJson("pagerank", p, opts, cell);
    }

    if (UsesPerfModes(p)) {
      // The speed tier measures the engine at scale through the PageRank
      // cell; say exactly which cells did NOT run rather than leaving holes
      // in the trajectory.
      std::fprintf(stderr,
                   "sssp      P=%-5u skipped: ~%u vertices/partition — cell "
                   "would measure fixed engine traffic, not relaxation\n"
                   "kmeans    P=%-5u skipped: all-to-all at this P is "
                   "infeasible without coalescing and pure exchange with it\n",
                   p, static_cast<uint32_t>(g.num_vertices() / p), p);
      continue;
    }

    // SSSP: monotone relaxations, naturally sparse traffic.
    {
      const Cell cell = RunCell(p, [&](cluster::SimCluster& sim,
                                       const async::EngineTuning& tuning,
                                       async::AsyncResult* stats) {
        apps::SsspConfig config;
        config.max_global_iterations = 400;
        config.async_tuning = tuning;
        return apps::AsyncSssp(sim, gw, part, config,
                               async::kUnboundedStaleness, stats)
            .converged;
      });
      PrintCell("sssp", p, cell);
      EmitJson("sssp", p, opts, cell);
    }

    // K-Means: all-to-all partial broadcast — the flow-count worst case and
    // the coalescing showcase (P-1 peers per worker per iteration).
    {
      const Cell cell = RunCell(p, [&](cluster::SimCluster& sim,
                                       const async::EngineTuning& tuning,
                                       async::AsyncResult* stats) {
        apps::KMeansConfig config;
        config.k = 8;
        config.num_partitions = p;
        // The engine's per-worker cap is 10x this. All-to-all traffic grows
        // with P * iterations * (P - 1), so the iteration budget shrinks as
        // P grows — the cell measures exchange throughput, not Lloyd depth.
        config.max_global_iterations = std::max<uint32_t>(2, 256 / p);
        config.threshold = 0.01;
        config.seed = opts.seed + 5;
        config.async_tuning = tuning;
        return apps::AsyncKMeans(sim, data, config,
                                 async::kUnboundedStaleness, stats)
            .converged;
      }, /*skip_off=*/p > 256);
      PrintCell("kmeans", p, cell);
      EmitJson("kmeans", p, opts, cell);
    }
  }
  obs_session.FlushOrWarn();
  return 0;
}

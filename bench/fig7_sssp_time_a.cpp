// Figure 7 reproduction: Single Source Shortest Path — time to converge vs
// number of partitions (Graph A).
#include "bench_common.hpp"

using namespace asyncmr;

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);
  bench::PrintBanner("Figure 7 — SSSP: time to converge vs #partitions (Graph A)",
                     opts);
  const auto rows = bench::RunSsspSweep(opts);
  bench::PrintGraphSweep("Figure 7 series (time):", "time", rows, opts);
  return 0;
}

// Ablation A3 — combiner interaction (paper Section VI, "Other
// Optimizations"): combiners aggregate gmap output per node and compose with
// partial synchronization. Measures shuffle bytes and job time for each
// combine scope on a skewed-key aggregation job.
#include <cstdio>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "mr/job.hpp"

using namespace asyncmr;

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);
  bench::PrintBanner("Ablation A3 — combiner scopes vs shuffle traffic", opts);

  const uint32_t num_splits = 64;
  const uint32_t records_per_split =
      static_cast<uint32_t>(opts.Scaled(200'000, 10'000));
  const uint32_t num_keys = 512;  // skewed popularity
  std::printf("workload: %u map tasks x %s records, %u keys (zipf-ish)\n\n",
              num_splits, WithThousands(records_per_split).c_str(), num_keys);

  struct Scope {
    const char* name;
    bool use_combiner;
    mr::CombineScope scope;
  };
  const Scope scopes[] = {
      {"none", false, mr::CombineScope::kNone},
      {"task", true, mr::CombineScope::kTask},
      {"node", true, mr::CombineScope::kNode},
      {"task+node", true, mr::CombineScope::kTaskAndNode},
  };

  std::printf("%-12s %-16s %-16s %-10s\n", "scope", "map-out", "shuffled", "time(s)");
  for (const Scope& scope : scopes) {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    mr::JobConfig job_config;
    job_config.name = "combine";
    job_config.num_reducers = 16;
    job_config.write_output_to_dfs = false;
    mr::Job<uint32_t, uint64_t, uint32_t, uint64_t> job(sim, job_config);
    if (scope.use_combiner) {
      job.set_combiner([](const uint64_t& a, const uint64_t& b) { return a + b; },
                       scope.scope);
    }
    job.set_mapper([&](uint32_t split, mr::MapContext<uint32_t, uint64_t>& ctx) {
      Rng rng(MixSeed(opts.seed, split));
      for (uint32_t i = 0; i < records_per_split; ++i) {
        // Zipf-ish skew: low keys dominate.
        const auto key = static_cast<uint32_t>(
            rng.NextBounded(1 + rng.NextBounded(num_keys)));
        ctx.Emit(key, 1);
      }
      ctx.AddOps(records_per_split);
    });
    job.set_reducer([](const uint32_t& key, const std::vector<uint64_t>& values,
                       mr::ReduceContext<uint32_t, uint64_t>& ctx) {
      uint64_t total = 0;
      for (uint64_t v : values) total += v;
      ctx.AddOps(values.size());
      ctx.Emit(key, total);
    });
    const auto out = job.RunBlocking(std::vector<mr::SplitDesc>(num_splits));
    std::printf("%-12s %-16s %-16s %-10.0f\n", scope.name,
                HumanBytes(out.raw.stats.map_output_bytes).c_str(),
                HumanBytes(out.raw.stats.shuffle_bytes).c_str(),
                out.raw.stats.elapsed());
  }
  std::printf("\nexpected shape: task-level combining collapses duplicate keys per\n"
              "task; node-level combining further merges across co-located tasks\n");
  return 0;
}

// Figure 5 reproduction: PageRank — time to converge vs number of partitions
// (Graph B). Paper shape: General flat in partition count; Eager far lower
// at coarse partitionings, degenerating toward General as partitions shrink.
#include "bench_common.hpp"

using namespace asyncmr;

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);
  bench::PrintBanner(
      "Figure 5 — PageRank: time to converge vs #partitions (Graph B)", opts);
  const auto rows = bench::RunPageRankSweep(bench::PaperGraph::kB, opts);
  bench::PrintGraphSweep("Figure 5 series (time):", "time", rows, opts);
  return 0;
}

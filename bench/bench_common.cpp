#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>

#include "common/stopwatch.hpp"
#include "common/string_util.hpp"
#include "graph/partitioner.hpp"

namespace asyncmr::bench {

ObsSession::ObsSession(const BenchOptions& opts)
    : trace_path_(opts.trace_out),
      metrics_path_(opts.metrics_out),
      metrics_interval_s_(opts.metrics_interval_s) {
  if (!trace_path_.empty()) trace_ = std::make_unique<obs::TraceSink>();
  if (!metrics_path_.empty()) metrics_ = std::make_unique<obs::MetricsRegistry>();
}

obs::Observability ObsSession::View() {
  obs::Observability view;
  view.trace = trace_.get();
  view.metrics = metrics_.get();
  view.metrics_interval_s = metrics_interval_s_;
  return view;
}

Status ObsSession::Flush() const {
  if (trace_ != nullptr) AMR_RETURN_IF_ERROR(trace_->WriteFile(trace_path_));
  if (metrics_ != nullptr) {
    AMR_RETURN_IF_ERROR(metrics_->WriteFile(metrics_path_));
  }
  return Status::Ok();
}

void ObsSession::FlushOrWarn() const {
  const Status status = Flush();
  if (!status.ok()) {
    std::fprintf(stderr, "observability flush failed: %s\n",
                 status.ToString().c_str());
  } else if (trace_ != nullptr) {
    std::fprintf(stderr, "trace: %zu events -> %s\n", trace_->num_events(),
                 trace_path_.c_str());
  }
  if (status.ok() && metrics_ != nullptr) {
    std::fprintf(stderr, "metrics: %zu samples x %zu series -> %s\n",
                 metrics_->num_samples(), metrics_->num_series(),
                 metrics_path_.c_str());
  }
}

std::vector<uint32_t> ScaledPartitionCounts(const BenchOptions& opts) {
  std::vector<uint32_t> ks;
  for (uint32_t k : kPaperPartitionCounts) {
    ks.push_back(static_cast<uint32_t>(std::max<uint64_t>(2, opts.Scaled(k))));
  }
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  return ks;
}

AblationGraphScenario BuildAblationGraphScenario(const BenchOptions& opts) {
  auto config = GraphConfig(PaperGraph::kA, opts);
  config.num_vertices = static_cast<graph::VertexId>(
      std::min<uint64_t>(config.num_vertices, opts.Scaled(50'000, 5000)));
  config.locality_window =
      std::max<graph::VertexId>(8, config.num_vertices / 1000);
  config.max_edge_age = 4 * config.locality_window;
  AblationGraphScenario scenario;
  scenario.g = graph::PreferentialAttachment(config);
  scenario.k = static_cast<uint32_t>(
      std::max<uint64_t>(8, std::min<uint64_t>(64, opts.Scaled(16))));
  scenario.part = graph::MultilevelPartition(scenario.g, scenario.k, opts.seed);
  return scenario;
}

graph::PrefAttachConfig GraphConfig(PaperGraph which, const BenchOptions& opts) {
  graph::PrefAttachConfig config = which == PaperGraph::kA
                                       ? graph::PrefAttachConfig::PaperGraphA(opts.seed)
                                       : graph::PrefAttachConfig::PaperGraphB(opts.seed + 1);
  config.num_vertices =
      static_cast<graph::VertexId>(opts.Scaled(config.num_vertices, 2000));
  config.locality_window = std::max<graph::VertexId>(8, config.num_vertices / 1000);
  config.max_edge_age = 4 * config.locality_window;
  return config;
}

namespace {

GraphSweepRow MakeRow(uint32_t k, double cut, const apps::PageRankResult& gen,
                      const apps::PageRankResult& eag) {
  GraphSweepRow row;
  row.partitions = k;
  row.cut_fraction = cut;
  row.general_iterations = gen.trace.global_iterations();
  row.general_seconds = gen.trace.total_seconds();
  row.general_ops = gen.trace.total_ops();
  row.eager_iterations = eag.trace.global_iterations();
  row.eager_seconds = eag.trace.total_seconds();
  row.eager_ops = eag.trace.total_ops();
  row.eager_local_iterations = eag.trace.total_local_iterations();
  return row;
}

GraphSweepRow MakeRow(uint32_t k, double cut, const apps::SsspResult& gen,
                      const apps::SsspResult& eag) {
  GraphSweepRow row;
  row.partitions = k;
  row.cut_fraction = cut;
  row.general_iterations = gen.trace.global_iterations();
  row.general_seconds = gen.trace.total_seconds();
  row.general_ops = gen.trace.total_ops();
  row.eager_iterations = eag.trace.global_iterations();
  row.eager_seconds = eag.trace.total_seconds();
  row.eager_ops = eag.trace.total_ops();
  row.eager_local_iterations = eag.trace.total_local_iterations();
  return row;
}

}  // namespace

std::vector<GraphSweepRow> RunPageRankSweep(PaperGraph which,
                                            const BenchOptions& opts) {
  Stopwatch wall;
  const auto g = graph::PreferentialAttachment(GraphConfig(which, opts));
  std::fprintf(stderr, "  [%.0fs] graph ready: %s\n", wall.ElapsedSeconds(),
               g.Describe().c_str());
  apps::PageRankConfig config;

  std::vector<GraphSweepRow> rows;
  for (uint32_t k : ScaledPartitionCounts(opts)) {
    const auto part = graph::MultilevelPartition(g, k, opts.seed);
    const double cut = graph::EvaluatePartition(g, part).cut_fraction;
    cluster::SimCluster general_cluster(cluster::ClusterSpec::Ec2Large8());
    const auto gen = apps::GeneralPageRank(general_cluster, g, part, config);
    cluster::SimCluster eager_cluster(cluster::ClusterSpec::Ec2Large8());
    const auto eag = apps::EagerPageRank(eager_cluster, g, part, config);
    rows.push_back(MakeRow(k, cut, gen, eag));
    std::fprintf(stderr,
                 "  [%.0fs] k=%-5u cut=%4.1f%%  general %3u it / %7.0f s   eager "
                 "%3u it / %7.0f s\n",
                 wall.ElapsedSeconds(), k, 100 * cut, rows.back().general_iterations,
                 rows.back().general_seconds, rows.back().eager_iterations,
                 rows.back().eager_seconds);
  }
  return rows;
}

std::vector<GraphSweepRow> RunSsspSweep(const BenchOptions& opts) {
  Stopwatch wall;
  const auto g0 = graph::PreferentialAttachment(GraphConfig(PaperGraph::kA, opts));
  const auto g = graph::WithRandomWeights(g0, 1.0, 10.0, opts.seed + 7);
  std::fprintf(stderr, "  [%.0fs] graph ready: %s\n", wall.ElapsedSeconds(),
               g.Describe().c_str());
  apps::SsspConfig config;

  std::vector<GraphSweepRow> rows;
  for (uint32_t k : ScaledPartitionCounts(opts)) {
    const auto part = graph::MultilevelPartition(g, k, opts.seed);
    const double cut = graph::EvaluatePartition(g, part).cut_fraction;
    cluster::SimCluster general_cluster(cluster::ClusterSpec::Ec2Large8());
    const auto gen = apps::GeneralSssp(general_cluster, g, part, config);
    cluster::SimCluster eager_cluster(cluster::ClusterSpec::Ec2Large8());
    const auto eag = apps::EagerSssp(eager_cluster, g, part, config);
    rows.push_back(MakeRow(k, cut, gen, eag));
    std::fprintf(stderr,
                 "  [%.0fs] k=%-5u cut=%4.1f%%  general %3u it / %7.0f s   eager "
                 "%3u it / %7.0f s\n",
                 wall.ElapsedSeconds(), k, 100 * cut, rows.back().general_iterations,
                 rows.back().general_seconds, rows.back().eager_iterations,
                 rows.back().eager_seconds);
  }
  return rows;
}

std::vector<KmeansSweepRow> RunKmeansSweep(const BenchOptions& opts) {
  Stopwatch wall;
  apps::CensusLikeConfig data_config;
  data_config.num_points =
      static_cast<uint32_t>(opts.Scaled(data_config.num_points, 5000));
  data_config.seed = opts.seed;
  const auto data = apps::GenerateCensusLike(data_config);
  std::fprintf(stderr, "  [%.0fs] dataset ready: %u points x %u dims\n",
               wall.ElapsedSeconds(), data.num_points(), data.dims());

  std::vector<KmeansSweepRow> rows;
  for (double threshold : kPaperThresholds) {
    apps::KMeansConfig config;
    config.threshold = threshold;
    config.seed = opts.seed + 3;
    cluster::SimCluster general_cluster(cluster::ClusterSpec::Ec2Large8());
    const auto gen = apps::GeneralKMeans(general_cluster, data, config);
    cluster::SimCluster eager_cluster(cluster::ClusterSpec::Ec2Large8());
    const auto eag = apps::EagerKMeans(eager_cluster, data, config);
    KmeansSweepRow row;
    row.threshold = threshold;
    row.general_iterations = gen.trace.global_iterations();
    row.general_seconds = gen.trace.total_seconds();
    row.eager_iterations = eag.trace.global_iterations();
    row.eager_seconds = eag.trace.total_seconds();
    row.eager_local_iterations = eag.trace.total_local_iterations();
    row.general_sse = gen.sse;
    row.eager_sse = eag.sse;
    rows.push_back(row);
    std::fprintf(stderr,
                 "  [%.0fs] delta=%-7g general %3u it / %6.0f s   eager %3u it / "
                 "%6.0f s\n",
                 wall.ElapsedSeconds(), threshold, row.general_iterations,
                 row.general_seconds, row.eager_iterations, row.eager_seconds);
  }
  return rows;
}

void PrintBanner(const std::string& title, const BenchOptions& opts) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("testbed: simulated %s (paper Table I)\n",
              cluster::ClusterSpec::Ec2Large8().Describe().c_str());
  std::printf("scale: %.2fx paper size (AMR_SCALE), seed %llu\n\n", opts.scale,
              static_cast<unsigned long long>(opts.seed));
}

void PrintGraphSweep(const std::string& figure_title, const std::string& metric,
                     const std::vector<GraphSweepRow>& rows,
                     const BenchOptions& opts) {
  std::printf("%s\n", figure_title.c_str());
  if (metric == "iterations") {
    std::printf("%-12s %-10s %-10s\n", "#Partitions", "Eager", "General");
    for (const auto& row : rows) {
      std::printf("%-12u %-10u %-10u\n", row.partitions, row.eager_iterations,
                  row.general_iterations);
    }
  } else {
    std::printf("%-12s %-14s %-14s %-9s\n", "#Partitions", "Eager(s)",
                "General(s)", "Speedup");
    for (const auto& row : rows) {
      std::printf("%-12u %-14.0f %-14.0f %-9.1fx\n", row.partitions,
                  row.eager_seconds, row.general_seconds, row.speedup());
    }
  }
  // Supporting detail: the tradeoff quantities the paper reasons about.
  std::printf("\ndetail: cut%%, serial ops (eager vs general), partial syncs\n");
  for (const auto& row : rows) {
    std::printf("  k=%-6u cut=%5.1f%%  ops %8s vs %8s  local-iters %s\n",
                row.partitions, 100 * row.cut_fraction,
                WithThousands(row.eager_ops).c_str(),
                WithThousands(row.general_ops).c_str(),
                WithThousands(row.eager_local_iterations).c_str());
  }
  double best = 0;
  for (const auto& row : rows) best = std::max(best, row.speedup());
  std::printf("\nbest speedup over the sweep: %.1fx\n", best);
  if (opts.csv) {
    std::printf("\ncsv,partitions,cut,gen_iters,gen_s,eag_iters,eag_s,local_iters\n");
    for (const auto& row : rows) {
      std::printf("csv,%u,%.4f,%u,%.1f,%u,%.1f,%llu\n", row.partitions,
                  row.cut_fraction, row.general_iterations, row.general_seconds,
                  row.eager_iterations, row.eager_seconds,
                  static_cast<unsigned long long>(row.eager_local_iterations));
    }
  }
  std::printf("\n");
}

void PrintKmeansSweep(const std::string& figure_title, const std::string& metric,
                      const std::vector<KmeansSweepRow>& rows,
                      const BenchOptions& opts) {
  std::printf("%s\n", figure_title.c_str());
  if (metric == "iterations") {
    std::printf("%-16s %-10s %-10s\n", "Threshold", "Eager", "General");
    for (const auto& row : rows) {
      std::printf("%-16g %-10u %-10u\n", row.threshold, row.eager_iterations,
                  row.general_iterations);
    }
  } else {
    std::printf("%-16s %-14s %-14s %-9s\n", "Threshold", "Eager(s)", "General(s)",
                "Speedup");
    for (const auto& row : rows) {
      std::printf("%-16g %-14.0f %-14.0f %-9.1fx\n", row.threshold,
                  row.eager_seconds, row.general_seconds, row.speedup());
    }
  }
  std::printf("\ndetail: clustering quality (SSE, lower is better)\n");
  for (const auto& row : rows) {
    std::printf("  delta=%-8g sse eager %.4g vs general %.4g (ratio %.3f)\n",
                row.threshold, row.eager_sse, row.general_sse,
                row.general_sse > 0 ? row.eager_sse / row.general_sse : 0.0);
  }
  double mean_speedup = 0;
  for (const auto& row : rows) mean_speedup += row.speedup();
  mean_speedup /= rows.empty() ? 1 : static_cast<double>(rows.size());
  std::printf("\naverage speedup: %.1fx\n", mean_speedup);
  if (opts.csv) {
    std::printf("\ncsv,threshold,gen_iters,gen_s,eag_iters,eag_s,local_iters\n");
    for (const auto& row : rows) {
      std::printf("csv,%g,%u,%.1f,%u,%.1f,%llu\n", row.threshold,
                  row.general_iterations, row.general_seconds, row.eager_iterations,
                  row.eager_seconds,
                  static_cast<unsigned long long>(row.eager_local_iterations));
    }
  }
  std::printf("\n");
}

}  // namespace asyncmr::bench

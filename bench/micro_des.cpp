// micro_des — DES-kernel throughput benchmark and perf trajectory anchor.
//
// Measures:
//   1. EventQueue events/sec on two synthetic workloads (timer churn and a
//      cancel-heavy pattern mirroring network-flow rebalancing), for both the
//      current slab-based queue and an embedded copy of the pre-slab
//      implementation (std::function callbacks + hash-map bookkeeping), so
//      the speedup is measured, not asserted.
//   2. End-to-end wall-clock of the two iterative workloads that dominate
//      experiment time: async PageRank (the ablation_async headline variant)
//      and general/eager PageRank waves (the fig4 flavor), on the power-law
//      graph scenario.
//
// Output: human-readable lines to stderr and ONE machine-readable JSON line
// to stdout — append it to BENCH_micro_des.json to extend the perf
// trajectory. Schema (all numbers):
//
//   {"bench":"micro_des","schema_version":V,"scale":S,"seed":N,
//    "churn_events_per_sec":E,"churn_legacy_events_per_sec":E,
//    "cancel_events_per_sec":E,"cancel_legacy_events_per_sec":E,
//    "queue_speedup":X,
//    "churn_calendar_events_per_sec":E,"cancel_calendar_events_per_sec":E,
//    "calendar_speedup":X,
//    "onebucket_heap_events_per_sec":E,"onebucket_calendar_events_per_sec":E,
//    "net_churn_events_per_sec":E,"net_churn_reference_events_per_sec":E,
//    "net_rebalance_speedup":X,
//    "async_pagerank_wall_s":T,"wave_pagerank_wall_s":T,
//    "async_virtual_s":T,"async_total_iterations":N,
//    "async_pagerank_sharded_wall_s":T,"sharded_speedup":X,
//    "shard_threads":N,"host_cores":N}
//
// The net_churn_* fields measure the fluid network itself: start/complete N
// overlapping flows on a 64-node topology and count flow events (starts +
// completions) per wall-second, for the incremental endpoint-local
// rebalancer vs the retained O(F) full-reference rebalancer.
//
// The *_calendar_* fields rerun the queue micros with QueueMode::kCalendar
// (same workload, byte-identical firing order); the onebucket_* pair is the
// pathological distribution — every pending event at ONE timestamp — where
// the calendar's sorted-bucket insert degrades and the heap does not.
// sharded_speedup is serial wall / DesMode::kSharded wall on the async
// anchor; on a single-core host it is honestly <= 1.
//
// Honours AMR_SCALE / AMR_SEED like the figure benches, plus
// AMR_SHARD_THREADS (0 = size to the hardware).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include "apps/pagerank.hpp"
#include "bench_common.hpp"
#include "graph/partitioner.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"

using namespace asyncmr;

namespace {

double WallSeconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// The pre-slab EventQueue, verbatim: one std::function heap allocation per
// event plus hash-map insert/erase and a cancelled-set probe. Kept here as
// the measured baseline for queue_speedup.
class LegacyEventQueue {
 public:
  using EventId = uint64_t;

  sim::SimTime now() const { return now_; }

  EventId Schedule(sim::SimTime at, std::function<void()> fn) {
    const EventId id = next_id_++;
    heap_.push(Event{at, id});
    callbacks_.emplace(id, std::move(fn));
    return id;
  }

  EventId ScheduleAfter(sim::SimTime delay, std::function<void()> fn) {
    return Schedule(now_ + delay, std::move(fn));
  }

  bool Cancel(EventId id) {
    auto it = callbacks_.find(id);
    if (it == callbacks_.end()) return false;
    callbacks_.erase(it);
    cancelled_.insert(id);
    return true;
  }

  bool RunOne() {
    while (!heap_.empty()) {
      const Event ev = heap_.top();
      heap_.pop();
      auto cancelled_it = cancelled_.find(ev.id);
      if (cancelled_it != cancelled_.end()) {
        cancelled_.erase(cancelled_it);
        continue;
      }
      auto cb_it = callbacks_.find(ev.id);
      std::function<void()> fn = std::move(cb_it->second);
      callbacks_.erase(cb_it);
      now_ = ev.time;
      ++fired_;
      fn();
      return true;
    }
    return false;
  }

  void RunUntilEmpty() {
    while (RunOne()) {
    }
  }

  uint64_t fired_count() const { return fired_; }

 private:
  struct Event {
    sim::SimTime time;
    EventId id;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  sim::SimTime now_ = 0.0;
  EventId next_id_ = 1;
  uint64_t fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

/// Constructs the benched queue, forwarding the far-store mode to the slab
/// queue; the legacy baseline has no modes and ignores it.
template <typename Queue>
Queue MakeQueue(sim::QueueMode mode) {
  if constexpr (std::is_constructible_v<Queue, sim::QueueMode>) {
    return Queue(mode);
  } else {
    (void)mode;
    return Queue{};
  }
}

/// Shared per-run state the event callables point into.
struct ChainState {
  uint64_t remaining = 0;
  uint64_t processed = 0;
  std::vector<uint64_t> armed;  // cancel workload: armed timer per lane
};

/// Event callables carry a trivially-copyable payload sized like a typical
/// simulator capture list ([this, hop_src, hop_dst, state, ...]): 40-48
/// bytes with the queue pointer. That exceeds libstdc++'s 16-byte
/// std::function small-object buffer, so the legacy queue heap-allocates
/// per event, while the slab queue stores every callable here inline
/// (all are <= EventFn::kInlineBytes = 48; static_asserts below).
struct EventPayload {
  ChainState* state = nullptr;
  uint32_t lane = 0;
  uint64_t salt[2] = {0, 0};
};

struct NoopEvent {
  EventPayload p;
  void operator()() const {}
};

/// Timer churn: W self-rescheduling chains modelled on the slot-lease loop —
/// each iteration is a zero-delay grant hop (SimCluster::AcquireSlot grants
/// free slots via ScheduleAfter(0.0)) followed by a timed compute event.
/// Returns events fired per wall-second.
template <typename Queue>
struct ChurnEvent {
  Queue* q = nullptr;
  EventPayload p;
  bool grant_hop = false;
  void operator()() const {
    if (p.state->remaining == 0) return;
    --p.state->remaining;
    if (grant_hop) {
      q->ScheduleAfter(0.5 + 0.001 * p.lane, ChurnEvent{q, p, false});
    } else {
      q->ScheduleAfter(0.0, ChurnEvent{q, p, true});
    }
  }
};

template <typename Queue>
double ChurnEventsPerSec(uint64_t total_events, uint32_t width,
                         sim::QueueMode mode = sim::QueueMode::kHeap) {
  static_assert(sizeof(ChurnEvent<Queue>) <= sim::EventFn::kInlineBytes,
                "churn callable must exercise the inline-storage path");
  Queue q = MakeQueue<Queue>(mode);
  ChainState state;
  state.remaining = total_events;
  const double wall = WallSeconds([&] {
    for (uint32_t lane = 0; lane < width; ++lane) {
      q.ScheduleAfter(0.001 * lane,
                      ChurnEvent<Queue>{&q, EventPayload{&state, lane, {}}});
    }
    q.RunUntilEmpty();
  });
  return static_cast<double>(q.fired_count()) / wall;
}

/// Cancel-heavy: each firing event is a link rebalance that cancels and
/// re-arms the completion timers of kFlowsPerLane in-flight transfers —
/// exactly what net::Network::Rebalance does when a flow starts or finishes
/// on a shared link, and the reason most scheduled events never fire.
/// Returns (fired + cancelled + re-armed) bookkeeping operations per
/// wall-second.
inline constexpr uint32_t kFlowsPerLane = 8;

template <typename Queue>
struct CancelEvent {
  Queue* q = nullptr;
  EventPayload p;
  void operator()() const {
    ChainState& s = *p.state;
    if (s.remaining == 0) return;
    --s.remaining;
    ++s.processed;
    // Rebalance: every in-flight completion estimate on this "link" moves.
    for (uint32_t f = 0; f < kFlowsPerLane; ++f) {
      uint64_t& armed = s.armed[p.lane * kFlowsPerLane + f];
      if (armed != 0 && q->Cancel(armed)) ++s.processed;
      armed = q->ScheduleAfter(0.3 + 0.01 * f, NoopEvent{p});
      ++s.processed;
    }
    q->ScheduleAfter(0.25 + 0.001 * p.lane, CancelEvent{*this});
  }
};

template <typename Queue>
double CancelEventsPerSec(uint64_t total_events, uint32_t width,
                          sim::QueueMode mode = sim::QueueMode::kHeap) {
  static_assert(sizeof(CancelEvent<Queue>) <= sim::EventFn::kInlineBytes &&
                    sizeof(NoopEvent) <= sim::EventFn::kInlineBytes,
                "cancel callables must exercise the inline-storage path");
  Queue q = MakeQueue<Queue>(mode);
  ChainState state;
  state.remaining = total_events / kFlowsPerLane;
  state.armed.assign(static_cast<size_t>(width) * kFlowsPerLane, 0);
  const double wall = WallSeconds([&] {
    for (uint32_t lane = 0; lane < width; ++lane) {
      q.ScheduleAfter(0.001 * lane,
                      CancelEvent<Queue>{&q, EventPayload{&state, lane, {}}});
    }
    q.RunUntilEmpty();
  });
  return static_cast<double>(state.processed) / wall;
}

/// Pathological distribution for the calendar: every pending event at ONE
/// timestamp, so all keys land in a single bucket and the sorted-descending
/// insert degrades toward O(n) per op (ascending seqs insert at the front).
/// The heap takes the same workload at O(log n). Reported for both modes so
/// the trajectory records the honest worst case, not just the win.
double OneBucketEventsPerSec(sim::QueueMode mode, uint64_t total_events,
                             uint32_t batch) {
  sim::EventQueue q(mode);
  ChainState state;
  uint64_t scheduled = 0;
  const double wall = WallSeconds([&] {
    while (scheduled < total_events) {
      for (uint32_t i = 0; i < batch; ++i) {
        q.ScheduleAfter(1.0, NoopEvent{EventPayload{&state, i, {}}});
      }
      scheduled += batch;
      q.RunUntilEmpty();
    }
  });
  return static_cast<double>(q.fired_count()) / wall;
}

/// Network churn: `lanes` concurrent flow chains over a 64-node cloud-ish
/// topology. Each lane keeps exactly one flow in the fluid model (the next
/// starts when the previous completes), so the active population holds at
/// ~lanes while starts and completions continuously churn the rebalancer —
/// the access pattern a large async-engine run produces. Endpoints and sizes
/// come from a deterministic hash, identical across modes. Returns flow
/// events (starts + completions) per wall-second.
double NetChurnEventsPerSec(net::RebalanceMode mode, uint64_t total_flows,
                            uint32_t lanes) {
  net::TopologyConfig cfg;
  cfg.num_nodes = 64;
  cfg.nodes_per_rack = 8;
  sim::EventQueue q;
  net::Network net(q, net::Topology(cfg), mode);
  uint64_t remaining = total_flows;
  std::function<void(uint32_t)> next = [&](uint32_t lane) {
    if (remaining == 0) return;
    --remaining;
    uint64_t h = (remaining + 1) * 0x9E3779B97F4A7C15ull + lane;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 32;
    const auto src = static_cast<net::NodeId>(h % cfg.num_nodes);
    const auto dst = static_cast<net::NodeId>((h >> 8) % cfg.num_nodes);
    const uint64_t bytes = 200'000 + (h >> 16) % 4'000'000;
    net.Transfer(src, dst, bytes, [&next, lane] { next(lane); });
  };
  const double wall = WallSeconds([&] {
    for (uint32_t lane = 0; lane < lanes; ++lane) next(lane);
    q.RunUntilEmpty();
  });
  return static_cast<double>(net.stats().flows_started +
                             net.stats().flows_completed) /
         wall;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);
  // This bench IS the overhead yardstick, so nothing here attaches the
  // sinks to a measured run — requesting --trace-out/--metrics-out yields
  // valid empty documents rather than a perturbed perf anchor.
  bench::ObsSession obs_session(opts);
  // Banner to stderr: stdout carries exactly one JSON line.
  std::fprintf(stderr,
               "=== micro_des — DES kernel throughput + end-to-end anchors ===\n"
               "scale: %.2fx paper size (AMR_SCALE), seed %llu\n",
               opts.scale, static_cast<unsigned long long>(opts.seed));

  // --- queue microbenchmarks -------------------------------------------------
  const uint64_t n_events = static_cast<uint64_t>(opts.Scaled(4'000'000, 400'000));
  // Concurrent event population: matches the default ablation scenario
  // (16 workers with a few in-flight transfers each), so the heap depth —
  // a cost both queues share — is realistic rather than inflated.
  const uint32_t width = static_cast<uint32_t>(GetEnvInt("AMR_DES_WIDTH", 64));

  const double churn = ChurnEventsPerSec<sim::EventQueue>(n_events, width);
  const double churn_legacy = ChurnEventsPerSec<LegacyEventQueue>(n_events, width);
  const double cancel = CancelEventsPerSec<sim::EventQueue>(n_events, width);
  const double cancel_legacy =
      CancelEventsPerSec<LegacyEventQueue>(n_events, width);
  const double speedup =
      0.5 * (churn / churn_legacy) + 0.5 * (cancel / cancel_legacy);

  std::fprintf(stderr, "churn:  %12.0f ev/s   (legacy %12.0f ev/s, %.2fx)\n",
               churn, churn_legacy, churn / churn_legacy);
  std::fprintf(stderr, "cancel: %12.0f op/s   (legacy %12.0f op/s, %.2fx)\n",
               cancel, cancel_legacy, cancel / cancel_legacy);

  // Same workloads through the calendar far store (byte-identical firing
  // order; only the container changes), plus the one-bucket worst case.
  const double churn_cal = ChurnEventsPerSec<sim::EventQueue>(
      n_events, width, sim::QueueMode::kCalendar);
  const double cancel_cal = CancelEventsPerSec<sim::EventQueue>(
      n_events, width, sim::QueueMode::kCalendar);
  const double cal_speedup =
      0.5 * (churn_cal / churn) + 0.5 * (cancel_cal / cancel);
  std::fprintf(stderr,
               "calendar: churn %12.0f ev/s (%.2fx heap), cancel %12.0f op/s "
               "(%.2fx heap)\n",
               churn_cal, churn_cal / churn, cancel_cal, cancel_cal / cancel);
  const uint64_t n_onebucket = std::max<uint64_t>(n_events / 8, 10'000);
  const double onebucket_heap =
      OneBucketEventsPerSec(sim::QueueMode::kHeap, n_onebucket, 1024);
  const double onebucket_cal =
      OneBucketEventsPerSec(sim::QueueMode::kCalendar, n_onebucket, 1024);
  std::fprintf(stderr,
               "one-bucket pileup: heap %12.0f ev/s, calendar %12.0f ev/s "
               "(%.2fx — pathological by design)\n",
               onebucket_heap, onebucket_cal, onebucket_cal / onebucket_heap);

  // --- fluid-network churn micro --------------------------------------------
  // ~1024 flows concurrently active on 64 nodes: the full-reference
  // rebalancer touches all of them on every start/completion, the
  // incremental one only the two endpoints' incident lists (~32 flows).
  const uint64_t n_net_flows =
      static_cast<uint64_t>(opts.Scaled(200'000, 20'000));
  const uint32_t net_lanes =
      static_cast<uint32_t>(GetEnvInt("AMR_NET_LANES", 1024));
  const double net_churn =
      NetChurnEventsPerSec(net::RebalanceMode::kIncremental, n_net_flows,
                           net_lanes);
  // Throughput is a steady-state measure, so the O(F^2) reference gets the
  // same active population but far fewer total flows — at 1024 active flows
  // it runs two orders of magnitude slower, and equal totals would make the
  // reference leg dominate the whole bench's wall time.
  const uint64_t n_ref_flows =
      std::max<uint64_t>(4 * net_lanes, n_net_flows / 50);
  const double net_churn_ref = NetChurnEventsPerSec(
      net::RebalanceMode::kFullReference, n_ref_flows, net_lanes);
  std::fprintf(stderr,
               "net:    %12.0f ev/s   (O(F) ref %12.0f ev/s, %.2fx) at %u "
               "active flows\n",
               net_churn, net_churn_ref, net_churn / net_churn_ref, net_lanes);

  // --- end-to-end anchors ----------------------------------------------------
  // The ablation_async graph scenario, built by the shared helper so this
  // anchor measures exactly what the ablation runs.
  const auto scenario = bench::BuildAblationGraphScenario(opts);
  const auto& g = scenario.g;
  const auto& part = scenario.part;

  apps::PageRankConfig pr;
  async::AsyncResult async_stats;
  double async_wall = 0.0;
  double wave_wall = 0.0;
  {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    async_wall = WallSeconds([&] {
      apps::AsyncPageRank(sim, g, part, pr, async::kUnboundedStaleness,
                          &async_stats);
    });
  }
  {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    wave_wall = WallSeconds([&] { apps::EagerPageRank(sim, g, part, pr); });
  }
  std::fprintf(stderr,
               "async PageRank: %.3fs wall (%.1fs virtual, %llu iterations); "
               "wave PageRank: %.3fs wall\n",
               async_wall, async_stats.seconds(),
               static_cast<unsigned long long>(async_stats.total_iterations),
               wave_wall);

  // Sharded-DES anchor: the same async run with compute callbacks offloaded
  // to the pool. Must be bit-identical to the serial run — verified here on
  // the headline stats so a silent divergence poisons no trajectory.
  const uint32_t host_cores = std::thread::hardware_concurrency();
  const auto shard_threads =
      static_cast<uint32_t>(GetEnvInt("AMR_SHARD_THREADS", 0));
  async::AsyncResult sharded_stats;
  double sharded_wall = 0.0;
  {
    apps::PageRankConfig pr_sharded = pr;
    pr_sharded.async_tuning.des_mode = async::DesMode::kSharded;
    pr_sharded.async_tuning.shard_threads = shard_threads;
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    sharded_wall = WallSeconds([&] {
      apps::AsyncPageRank(sim, g, part, pr_sharded, async::kUnboundedStaleness,
                          &sharded_stats);
    });
  }
  if (sharded_stats.total_iterations != async_stats.total_iterations ||
      sharded_stats.end_seconds != async_stats.end_seconds) {
    std::fprintf(stderr,
                 "WARNING: sharded run diverged from serial "
                 "(iterations %llu vs %llu, end %.17g vs %.17g)\n",
                 static_cast<unsigned long long>(sharded_stats.total_iterations),
                 static_cast<unsigned long long>(async_stats.total_iterations),
                 sharded_stats.end_seconds, async_stats.end_seconds);
  }
  std::fprintf(stderr,
               "sharded async PageRank: %.3fs wall (%.2fx serial) on %u host "
               "cores\n",
               sharded_wall, async_wall / sharded_wall, host_cores);

  // --- the JSON trajectory line ----------------------------------------------
  std::printf(
      "{\"bench\":\"micro_des\",\"schema_version\":%d,\"scale\":%g,\"seed\":%llu,"
      "\"churn_events_per_sec\":%.0f,\"churn_legacy_events_per_sec\":%.0f,"
      "\"cancel_events_per_sec\":%.0f,\"cancel_legacy_events_per_sec\":%.0f,"
      "\"queue_speedup\":%.3f,"
      "\"churn_calendar_events_per_sec\":%.0f,"
      "\"cancel_calendar_events_per_sec\":%.0f,"
      "\"calendar_speedup\":%.3f,"
      "\"onebucket_heap_events_per_sec\":%.0f,"
      "\"onebucket_calendar_events_per_sec\":%.0f,"
      "\"net_churn_events_per_sec\":%.0f,"
      "\"net_churn_reference_events_per_sec\":%.0f,"
      "\"net_rebalance_speedup\":%.3f,"
      "\"async_pagerank_wall_s\":%.4f,\"wave_pagerank_wall_s\":%.4f,"
      "\"async_virtual_s\":%.4f,\"async_total_iterations\":%llu,"
      "\"async_pagerank_sharded_wall_s\":%.4f,\"sharded_speedup\":%.3f,"
      "\"shard_threads\":%u,\"host_cores\":%u}\n",
      bench::kBenchSchemaVersion, opts.scale,
      static_cast<unsigned long long>(opts.seed), churn,
      churn_legacy, cancel, cancel_legacy, speedup, churn_cal, cancel_cal,
      cal_speedup, onebucket_heap, onebucket_cal, net_churn, net_churn_ref,
      net_churn / net_churn_ref, async_wall, wave_wall, async_stats.seconds(),
      static_cast<unsigned long long>(async_stats.total_iterations),
      sharded_wall, async_wall / sharded_wall,
      shard_threads != 0 ? shard_threads
                         : std::max(2u, std::thread::hardware_concurrency()),
      host_cores);
  obs_session.FlushOrWarn();
  return 0;
}

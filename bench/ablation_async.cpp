// Ablation A6 — synchronization spectrum on the power-law graph scenario:
//
//   general       one MapReduce job per Jacobi sweep (the vanilla baseline)
//   partial-sync  the paper's eager gmap (local convergence per global round)
//   async S=0     barrier-free engine with a zero staleness window
//                 (synchronized rounds — SSP lag bound 0 — but no job
//                 submit / shuffle / DFS round trip, isolating the barrier
//                 *implementation* cost)
//   async S=3     bounded staleness window
//   async         unbounded staleness (pure asynchrony)
//
// Reports iterations-to-convergence (global rounds for the wave engines,
// worker iterations for the async engine), virtual time, and network bytes,
// for PageRank and SSSP. The headline: async virtual-time-to-convergence
// must come in at or below the partial-sync baseline.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "common/string_util.hpp"
#include "graph/partitioner.hpp"

using namespace asyncmr;

namespace {

struct Row {
  std::string variant;
  uint32_t global_iters = 0;
  uint64_t local_iters = 0;
  double seconds = 0.0;
  uint64_t net_bytes = 0;
  bool converged = false;
};

void PrintRows(const std::vector<Row>& rows, const BenchOptions& opts,
               const char* workload) {
  const double base = rows.front().seconds;
  std::printf("%-14s %-9s %-13s %-11s %-12s %-9s %s\n", "variant", "globals",
              "local/async", "time(s)", "net-bytes", "speedup", "converged");
  for (const Row& r : rows) {
    std::printf("%-14s %-9u %-13llu %-11.1f %-12s %-9.2f %s\n", r.variant.c_str(),
                r.global_iters, static_cast<unsigned long long>(r.local_iters),
                r.seconds, HumanBytes(r.net_bytes).c_str(),
                r.seconds > 0 ? base / r.seconds : 0.0, r.converged ? "yes" : "NO");
    if (opts.csv) {
      std::printf("CSV,%s,%s,%u,%llu,%.3f,%llu,%d\n", workload, r.variant.c_str(),
                  r.global_iters, static_cast<unsigned long long>(r.local_iters),
                  r.seconds, static_cast<unsigned long long>(r.net_bytes),
                  r.converged ? 1 : 0);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const auto opts = BenchOptions::FromEnv();
  bench::PrintBanner("Ablation A6 — barrier-free async vs partial-sync vs general",
                     opts);

  // The power-law graph scenario (crawl-locality preferential attachment),
  // shared with bench/micro_des so the perf anchor never drifts from it.
  auto scenario = bench::BuildAblationGraphScenario(opts);
  const auto& g = scenario.g;
  const uint32_t k = scenario.k;
  const auto& part = scenario.part;
  std::printf("graph: %s, k=%u partitions (%s)\n\n", g.Describe().c_str(), k,
              graph::EvaluatePartition(g, part).ToString().c_str());

  // --- PageRank --------------------------------------------------------------
  std::printf("PageRank:\n");
  std::vector<Row> rows;
  apps::PageRankConfig pr;
  {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    const auto r = apps::GeneralPageRank(sim, g, part, pr);
    rows.push_back({"general", r.trace.global_iterations(), 0,
                    r.trace.total_seconds(), r.trace.total_shuffle_bytes(),
                    r.converged});
  }
  {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    const auto r = apps::EagerPageRank(sim, g, part, pr);
    rows.push_back({"partial-sync", r.trace.global_iterations(),
                    r.trace.total_local_iterations(), r.trace.total_seconds(),
                    r.trace.total_shuffle_bytes(), r.converged});
  }
  const double partial_sync_s = rows.back().seconds;
  for (const auto& [label, staleness] :
       std::vector<std::pair<std::string, uint32_t>>{
           {"async-s0", 0u}, {"async-s3", 3u}, {"async", async::kUnboundedStaleness}}) {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    async::AsyncResult stats;
    const auto r = apps::AsyncPageRank(sim, g, part, pr, staleness, &stats);
    rows.push_back({label, 0, stats.total_iterations, stats.seconds(),
                    stats.bytes_sent, r.converged});
  }
  PrintRows(rows, opts, "pagerank");
  const double async_s = rows.back().seconds;

  // --- SSSP ------------------------------------------------------------------
  std::printf("SSSP (random weights):\n");
  const auto gw = graph::WithRandomWeights(g, 1.0, 10.0, opts.seed + 3);
  std::vector<Row> srows;
  apps::SsspConfig sc;
  {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    const auto r = apps::GeneralSssp(sim, gw, part, sc);
    srows.push_back({"general", r.trace.global_iterations(), 0,
                     r.trace.total_seconds(), r.trace.total_shuffle_bytes(),
                     r.converged});
  }
  {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    const auto r = apps::EagerSssp(sim, gw, part, sc);
    srows.push_back({"partial-sync", r.trace.global_iterations(),
                     r.trace.total_local_iterations(), r.trace.total_seconds(),
                     r.trace.total_shuffle_bytes(), r.converged});
  }
  {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    async::AsyncResult stats;
    const auto r = apps::AsyncSssp(sim, gw, part, sc,
                                   async::kUnboundedStaleness, &stats);
    srows.push_back({"async", 0, stats.total_iterations, stats.seconds(),
                     stats.bytes_sent, r.converged});
  }
  PrintRows(srows, opts, "sssp");

  std::printf("headline: async PageRank %.1fs vs partial-sync %.1fs — %s\n",
              async_s, partial_sync_s,
              async_s <= partial_sync_s
                  ? "async is at or below the partial-sync baseline"
                  : "REGRESSION: async is slower than partial-sync");
  return async_s <= partial_sync_s ? 0 : 1;
}

// Ablation A6 — synchronization spectrum across every application family:
//
//   general       one MapReduce job per global iteration (the vanilla baseline)
//   partial-sync  the paper's eager gmap (local convergence per global round)
//   async S=0     barrier-free engine with a zero staleness window
//                 (synchronized rounds — SSP lag bound 0 — but no job
//                 submit / shuffle / DFS round trip, isolating the barrier
//                 *implementation* cost)
//   async S=4     bounded staleness window
//   async         unbounded staleness (pure asynchrony)
//
// Runs all five apps — PageRank, SSSP, K-Means, Components, Jacobi — so the
// paper's central claim (asynchrony pays off across algorithm *families*)
// is measured, not asserted. The async engine charges a per-record merge
// cost for applying delivered batches (merge-ops column), so its times are
// not flattered by free state application.
//
// Reports iterations-to-convergence (global rounds for the wave engines,
// worker iterations for the async engine), virtual time, and network bytes.
// One machine-readable JSON line per app goes to stdout — append them to
// BENCH_ablation_async.json to extend the trajectory. The headline: async
// PageRank virtual-time-to-convergence must come in at or below the
// partial-sync baseline.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/components.hpp"
#include "apps/jacobi.hpp"
#include "apps/kmeans.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "graph/partitioner.hpp"

using namespace asyncmr;

namespace {

struct Row {
  std::string variant;
  uint32_t global_iters = 0;
  uint64_t local_iters = 0;
  double seconds = 0.0;
  uint64_t net_bytes = 0;
  uint64_t merge_ops = 0;
  bool converged = false;
};

const std::vector<std::pair<std::string, uint32_t>> kStalenessSweep = {
    {"async-s0", 0u}, {"async-s4", 4u}, {"async", async::kUnboundedStaleness}};

void PrintRows(const std::vector<Row>& rows, const BenchOptions& opts,
               const char* workload) {
  const double base = rows.front().seconds;
  std::printf("%-14s %-9s %-13s %-11s %-12s %-11s %-9s %s\n", "variant",
              "globals", "local/async", "time(s)", "net-bytes", "merge-ops",
              "speedup", "converged");
  for (const Row& r : rows) {
    std::printf("%-14s %-9u %-13llu %-11.1f %-12s %-11s %-9.2f %s\n",
                r.variant.c_str(), r.global_iters,
                static_cast<unsigned long long>(r.local_iters), r.seconds,
                HumanBytes(r.net_bytes).c_str(),
                WithThousands(r.merge_ops).c_str(),
                r.seconds > 0 ? base / r.seconds : 0.0, r.converged ? "yes" : "NO");
    if (opts.csv) {
      std::printf("CSV,%s,%s,%u,%llu,%.3f,%llu,%llu,%d\n", workload,
                  r.variant.c_str(), r.global_iters,
                  static_cast<unsigned long long>(r.local_iters), r.seconds,
                  static_cast<unsigned long long>(r.net_bytes),
                  static_cast<unsigned long long>(r.merge_ops),
                  r.converged ? 1 : 0);
    }
  }
  std::printf("\n");
}

/// The rows arrive ordered: general, partial-sync, async-s0, async-s4, async.
void EmitJson(const std::vector<Row>& rows, const BenchOptions& opts,
              const char* workload) {
  const Row& async_row = rows.back();
  std::printf(
      "{\"bench\":\"ablation_async\",\"schema_version\":%d,\"app\":\"%s\","
      "\"scale\":%g,\"seed\":%llu,"
      "\"general_s\":%.4f,\"partial_sync_s\":%.4f,\"async_s0_s\":%.4f,"
      "\"async_s4_s\":%.4f,\"async_s\":%.4f,\"async_iters\":%llu,"
      "\"async_net_bytes\":%llu,\"async_merge_ops\":%llu,"
      "\"async_converged\":%d}\n",
      bench::kBenchSchemaVersion, workload, opts.scale,
      static_cast<unsigned long long>(opts.seed),
      rows[0].seconds, rows[1].seconds, rows[2].seconds, rows[3].seconds,
      async_row.seconds, static_cast<unsigned long long>(async_row.local_iters),
      static_cast<unsigned long long>(async_row.net_bytes),
      static_cast<unsigned long long>(async_row.merge_ops),
      async_row.converged ? 1 : 0);
}

Row WaveRow(const std::string& variant, const core::RunTrace& trace,
            bool converged, bool with_locals) {
  return {variant,
          trace.global_iterations(),
          with_locals ? trace.total_local_iterations() : 0,
          trace.total_seconds(),
          trace.total_shuffle_bytes(),
          0,
          converged};
}

Row AsyncRow(const std::string& variant, const async::AsyncResult& stats,
             bool converged) {
  return {variant,      0,
          stats.total_iterations, stats.seconds(),
          stats.bytes_sent,       stats.total_merge_ops,
          converged};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);
  bench::ObsSession obs_session(opts);
  bench::PrintBanner(
      "Ablation A6 — barrier-free async vs partial-sync vs general, all apps",
      opts);

  // The power-law graph scenario (crawl-locality preferential attachment),
  // shared with bench/micro_des so the perf anchor never drifts from it.
  auto scenario = bench::BuildAblationGraphScenario(opts);
  const auto& g = scenario.g;
  const uint32_t k = scenario.k;
  const auto& part = scenario.part;
  std::printf("graph: %s, k=%u partitions (%s)\n\n", g.Describe().c_str(), k,
              graph::EvaluatePartition(g, part).ToString().c_str());

  // --- PageRank --------------------------------------------------------------
  std::printf("PageRank:\n");
  std::vector<Row> rows;
  apps::PageRankConfig pr;
  {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    const auto r = apps::GeneralPageRank(sim, g, part, pr);
    rows.push_back(WaveRow("general", r.trace, r.converged, false));
  }
  {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    const auto r = apps::EagerPageRank(sim, g, part, pr);
    rows.push_back(WaveRow("partial-sync", r.trace, r.converged, true));
  }
  const double partial_sync_s = rows.back().seconds;
  for (const auto& [label, staleness] : kStalenessSweep) {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    async::AsyncResult stats;
    // The headline variant (unbounded-staleness PageRank) is the traced run
    // when --trace-out/--metrics-out is set.
    apps::PageRankConfig config = pr;
    if (staleness == async::kUnboundedStaleness) {
      config.async_tuning.obs = obs_session.View();
    }
    const auto r = apps::AsyncPageRank(sim, g, part, config, staleness, &stats);
    rows.push_back(AsyncRow(label, stats, r.converged));
  }
  PrintRows(rows, opts, "pagerank");
  EmitJson(rows, opts, "pagerank");
  const double async_s = rows.back().seconds;

  // --- SSSP ------------------------------------------------------------------
  std::printf("\nSSSP (random weights):\n");
  const auto gw = graph::WithRandomWeights(g, 1.0, 10.0, opts.seed + 3);
  std::vector<Row> srows;
  apps::SsspConfig sc;
  {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    const auto r = apps::GeneralSssp(sim, gw, part, sc);
    srows.push_back(WaveRow("general", r.trace, r.converged, false));
  }
  {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    const auto r = apps::EagerSssp(sim, gw, part, sc);
    srows.push_back(WaveRow("partial-sync", r.trace, r.converged, true));
  }
  for (const auto& [label, staleness] : kStalenessSweep) {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    async::AsyncResult stats;
    const auto r = apps::AsyncSssp(sim, gw, part, sc, staleness, &stats);
    srows.push_back(AsyncRow(label, stats, r.converged));
  }
  PrintRows(srows, opts, "sssp");
  EmitJson(srows, opts, "sssp");

  // --- K-Means ---------------------------------------------------------------
  std::printf("\nK-Means (census-like):\n");
  apps::CensusLikeConfig data_config;
  data_config.num_points = static_cast<uint32_t>(opts.Scaled(30'000, 2'000));
  data_config.seed = opts.seed;
  const auto data = apps::GenerateCensusLike(data_config);
  apps::KMeansConfig km;
  km.k = 8;
  km.num_partitions = std::max(4u, k);
  km.seed = opts.seed + 5;
  std::vector<Row> krows;
  {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    const auto r = apps::GeneralKMeans(sim, data, km);
    krows.push_back(WaveRow("general", r.trace, r.converged, false));
  }
  {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    const auto r = apps::EagerKMeans(sim, data, km);
    krows.push_back(WaveRow("partial-sync", r.trace, r.converged, true));
  }
  for (const auto& [label, staleness] : kStalenessSweep) {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    async::AsyncResult stats;
    const auto r = apps::AsyncKMeans(sim, data, km, staleness, &stats);
    krows.push_back(AsyncRow(label, stats, r.converged));
  }
  PrintRows(krows, opts, "kmeans");
  EmitJson(krows, opts, "kmeans");

  // --- Connected Components --------------------------------------------------
  std::printf("\nConnected Components:\n");
  std::vector<Row> crows;
  apps::ComponentsConfig cc;
  {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    const auto r = apps::GeneralComponents(sim, g, part, cc);
    crows.push_back(WaveRow("general", r.trace, r.converged, false));
  }
  {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    const auto r = apps::EagerComponents(sim, g, part, cc);
    crows.push_back(WaveRow("partial-sync", r.trace, r.converged, true));
  }
  for (const auto& [label, staleness] : kStalenessSweep) {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    async::AsyncResult stats;
    const auto r = apps::AsyncComponents(sim, g, part, cc, staleness, &stats);
    crows.push_back(AsyncRow(label, stats, r.converged));
  }
  PrintRows(crows, opts, "components");
  EmitJson(crows, opts, "components");

  // --- Jacobi ----------------------------------------------------------------
  std::printf("\nJacobi (A = D + I - Adj over the symmetrized graph):\n");
  const auto g_sym = apps::Symmetrized(g);
  std::vector<double> b(g_sym.num_vertices());
  Rng rhs_rng(opts.seed + 11);
  for (double& v : b) v = rhs_rng.NextDouble(-1.0, 1.0);
  apps::JacobiConfig jc;
  jc.tolerance = 1e-6;  // bench scale: keep the general baseline's round count sane
  std::vector<Row> jrows;
  {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    const auto r = apps::GeneralJacobi(sim, g_sym, b, part, jc);
    jrows.push_back(WaveRow("general", r.trace, r.converged, false));
  }
  {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    const auto r = apps::EagerJacobi(sim, g_sym, b, part, jc);
    jrows.push_back(WaveRow("partial-sync", r.trace, r.converged, true));
  }
  for (const auto& [label, staleness] : kStalenessSweep) {
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    async::AsyncResult stats;
    const auto r = apps::AsyncJacobi(sim, g_sym, b, part, jc, staleness, &stats);
    jrows.push_back(AsyncRow(label, stats, r.converged));
  }
  PrintRows(jrows, opts, "jacobi");
  EmitJson(jrows, opts, "jacobi");

  std::printf("\nheadline: async PageRank %.1fs vs partial-sync %.1fs — %s\n",
              async_s, partial_sync_s,
              async_s <= partial_sync_s
                  ? "async is at or below the partial-sync baseline"
                  : "REGRESSION: async is slower than partial-sync");
  obs_session.FlushOrWarn();
  return async_s <= partial_sync_s ? 0 : 1;
}

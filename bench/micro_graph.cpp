// Micro-benchmarks (google-benchmark): graph substrate — generation,
// partitioning, and the local-runtime hot path.
#include <benchmark/benchmark.h>

#include "apps/app_common.hpp"
#include "core/local_runtime.hpp"
#include "graph/generator.hpp"
#include "graph/partitioner.hpp"

namespace asyncmr {
namespace {

graph::Digraph BenchGraph(uint32_t n) {
  graph::PrefAttachConfig config;
  config.num_vertices = n;
  config.num_in = 3;
  config.num_out = 3;
  config.locality_window = std::max(8u, n / 1000);
  config.max_edge_age = 4 * config.locality_window;
  return graph::PreferentialAttachment(config);
}

void BM_PreferentialAttachment(benchmark::State& state) {
  const auto n = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BenchGraph(n).num_edges());
  }
}
BENCHMARK(BM_PreferentialAttachment)->Arg(10'000)->Arg(40'000);

void BM_MultilevelPartition(benchmark::State& state) {
  const auto g = BenchGraph(20'000);
  const auto k = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::MultilevelPartition(g, k).part_of.size());
  }
}
BENCHMARK(BM_MultilevelPartition)->Arg(16)->Arg(128)->Arg(1024);

void BM_PartitionQuality(benchmark::State& state) {
  const auto g = BenchGraph(20'000);
  const auto p = graph::MultilevelPartition(g, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::EvaluatePartition(g, p).cut_edges);
  }
}
BENCHMARK(BM_PartitionQuality);

void BM_DenseAccumulatorDrain(benchmark::State& state) {
  const auto n = static_cast<uint32_t>(state.range(0));
  apps::DenseAccumulator acc(n);
  Rng rng(3);
  std::vector<uint32_t> targets(4 * n);
  for (auto& t : targets) t = static_cast<uint32_t>(rng.NextBounded(n));
  for (auto _ : state) {
    for (uint32_t t : targets) acc.Add(t, 1.0);
    benchmark::DoNotOptimize(acc.DrainSorted().size());
  }
  state.SetItemsProcessed(state.iterations() * targets.size());
}
BENCHMARK(BM_DenseAccumulatorDrain)->Arg(1 << 12)->Arg(1 << 16);

void BM_LocalMapReduceIteration(benchmark::State& state) {
  // The gmap inner loop on a synthetic ring partition.
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  std::vector<uint32_t> xs(n);
  for (uint32_t i = 0; i < n; ++i) xs[i] = i;
  core::LocalMapReduce<uint32_t, uint32_t, double>::Config config;
  config.max_local_iterations = 8;
  config.lcombine = [](const double& a, const double& b) { return a + b; };
  core::LocalMapReduce<uint32_t, uint32_t, double> local(
      [n](const uint32_t& x, const core::LocalState<uint32_t, double>& s,
          core::LocalIntermediate<uint32_t, double>& out) {
        const double r = s.at(x);
        out.EmitLocalIntermediate((x + 1) % n, r * 0.5);
        out.EmitLocalIntermediate((x + n - 1) % n, r * 0.5);
      },
      [](const uint32_t& k, const std::vector<double>& vs,
         const core::LocalState<uint32_t, double>&,
         core::LocalReduceContext<uint32_t, double>& ctx) {
        double sum = 0;
        for (double v : vs) sum += v;
        ctx.EmitLocal(k, 0.15 + 0.85 * sum);
      },
      [](const core::LocalState<uint32_t, double>&,
         const core::LocalState<uint32_t, double>&, uint32_t) { return false; },
      config);
  for (auto _ : state) {
    core::LocalState<uint32_t, double> s;
    s.reserve(2 * n);
    for (uint32_t i = 0; i < n; ++i) s.emplace(i, 1.0);
    const auto stats = local.Run(xs, s);
    benchmark::DoNotOptimize(stats.ops);
  }
  state.SetItemsProcessed(state.iterations() * n * 8);
}
BENCHMARK(BM_LocalMapReduceIteration)->Arg(1 << 10)->Arg(1 << 13);

}  // namespace
}  // namespace asyncmr

BENCHMARK_MAIN();

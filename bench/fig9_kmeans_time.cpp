// Figure 9 reproduction: K-Means — time to converge for varying convergence
// thresholds (52 partitions, census-like data).
#include "bench_common.hpp"

using namespace asyncmr;

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);
  bench::PrintBanner("Figure 9 — K-Means: time-to-converge vs threshold", opts);
  const auto rows = bench::RunKmeansSweep(opts);
  bench::PrintKmeansSweep("Figure 9 series (time):", "time", rows, opts);
  return 0;
}

// Ablation A6 — heterogeneity: the widening async advantage under stragglers.
//
// Hannah & Yin's analysis (and the paper's motivation for dropping barriers)
// predicts that synchronous execution degrades with the SLOWEST participant
// while asynchronous execution degrades with the AVERAGE: every sync round
// waits for the most loaded/slowest node, so as heterogeneity grows the gap
// between lockstep (S=0) and barrier-free execution widens. This bench sweeps
// one heterogeneity knob — a geometric static speed spread across the node
// inventory (node 0 at 1.0, the slowest at 1/spread) — against the staleness
// axis for async PageRank, and adds a final row where the compute fleet is
// uniform but the WORKLOAD is skewed (power-law partition sizes): the same
// slowest-participant effect from data skew instead of hardware skew.
//
// Each row appends one machine-readable JSON line to stdout — collect them
// into BENCH_ablation_hetero.json to extend the trajectory.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/partitioner.hpp"

using namespace asyncmr;

namespace {

struct Row {
  const char* label;
  double spread;      // speed spread (1 = uniform fleet)
  double skew_alpha;  // power-law partition skew (0 = balanced parts)
  double sync_s = 0, s4_s = 0, async_s = 0;
  double gap() const { return async_s > 0 ? sync_s / async_s : 0.0; }
};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);
  bench::ObsSession obs_session(opts);
  bench::PrintBanner("Ablation A6 — heterogeneity: sync waits, async widens", opts);

  auto config = bench::GraphConfig(bench::PaperGraph::kA, opts);
  config.num_vertices = static_cast<graph::VertexId>(
      std::min<uint64_t>(config.num_vertices, opts.Scaled(70'000, 5000)));
  config.locality_window = std::max<graph::VertexId>(8, config.num_vertices / 1000);
  config.max_edge_age = 4 * config.locality_window;
  const auto g = graph::PreferentialAttachment(config);
  const uint32_t k = static_cast<uint32_t>(std::max<uint64_t>(8, opts.Scaled(100)));
  const auto balanced = graph::MultilevelPartition(g, k, opts.seed);
  std::printf("graph: %s, k=%u partitions\n\n", g.Describe().c_str(), k);

  std::vector<Row> rows = {
      {"uniform", 1.0, 0.0},  {"spread=2", 2.0, 0.0}, {"spread=4", 4.0, 0.0},
      {"spread=8", 8.0, 0.0}, {"skew=0.7", 1.0, 0.7},
  };
  const double max_spread = 8.0;

  apps::PageRankConfig pr;
  // Termination detection is quantized by the inter-token-circuit pause; at
  // these few-virtual-second runs the default 0.25 s cadence is ~10% noise on
  // the gap, so tighten it for the sweep (identical across all cells).
  pr.async_tuning.token_backoff_s = 0.05;
  std::printf("%-10s %-10s %-9s %-10s %-11s %-10s\n", "knob", "sync(s)",
              "S=4(s)", "async(s)", "gap(sy/as)", "converged");
  for (auto& row : rows) {
    const auto part = row.skew_alpha > 0.0
                          ? graph::PowerLawPartition(g, k, row.skew_alpha)
                          : balanced;
    bool all_converged = true;
    for (int col = 0; col < 3; ++col) {
      auto spec = cluster::ClusterSpec::Ec2Large8();
      spec.seed = opts.seed;
      spec.ApplySpeedSpread(row.spread);
      cluster::SimCluster sim(spec);
      async::AsyncResult stats;
      apps::PageRankConfig apr = pr;
      // The widest-spread pure-async run is the traced one when
      // --trace-out/--metrics-out is set: its timeline shows the fast nodes
      // running ahead of the straggler instead of waiting at a barrier.
      if (col == 2 && row.spread == max_spread) apr.async_tuning.obs = obs_session.View();
      const uint32_t staleness = col == 0   ? 0u
                                 : col == 1 ? 4u
                                            : async::kUnboundedStaleness;
      const auto res = apps::AsyncPageRank(sim, g, part, apr, staleness, &stats);
      all_converged = all_converged && res.converged;
      (col == 0 ? row.sync_s : col == 1 ? row.s4_s : row.async_s) = stats.seconds();
    }
    std::printf("%-10s %-10.1f %-9.1f %-10.1f %-11.2f %-10s\n", row.label,
                row.sync_s, row.s4_s, row.async_s, row.gap(),
                all_converged ? "yes" : "NO");
    std::printf(
        "{\"bench\":\"ablation_hetero\",\"schema_version\":%d,"
        "\"scale\":%g,\"seed\":%llu,\"knob\":\"%s\",\"speed_spread\":%g,"
        "\"skew_alpha\":%g,\"sync_s\":%.4f,\"s4_s\":%.4f,\"async_s\":%.4f,"
        "\"gap\":%.4f,\"converged\":%d}\n",
        bench::kBenchSchemaVersion, opts.scale,
        static_cast<unsigned long long>(opts.seed), row.label, row.spread,
        row.skew_alpha, row.sync_s, row.s4_s, row.async_s, row.gap(),
        all_converged ? 1 : 0);
  }

  // Expected shape: the sync/async gap grows monotonically along the spread
  // axis (5% slack for virtual-time scheduling noise at small scales).
  bool monotone = true;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].skew_alpha > 0.0) continue;  // the skew row is a separate axis
    if (rows[i].gap() < rows[i - 1].gap() * 0.95) monotone = false;
  }
  std::printf(
      "\nexpected shape: sync rounds pace with the slowest node, so the\n"
      "sync/async gap widens monotonically with the speed spread%s; the\n"
      "skew row shows the same effect from power-law partition sizes.\n",
      monotone ? " (OK)" : " (VIOLATED)");
  obs_session.FlushOrWarn();
  if (!monotone && opts.scale >= 1.0) return 1;
  return 0;
}

// Micro-benchmarks (google-benchmark): serialization layer throughput — the
// plumbing every shuffle byte passes through.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "serde/checksum.hpp"
#include "serde/kv.hpp"
#include "serde/serde.hpp"

namespace asyncmr::serde {
namespace {

void BM_VarintEncode(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint64_t> values(4096);
  for (auto& v : values) v = rng.Next() >> rng.NextBounded(64);
  for (auto _ : state) {
    Buffer buf;
    Writer w(buf);
    for (uint64_t v : values) w.WriteVarU64(v);
    benchmark::DoNotOptimize(buf.size());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_VarintEncode);

void BM_VarintDecode(benchmark::State& state) {
  Rng rng(1);
  Buffer buf;
  Writer w(buf);
  for (int i = 0; i < 4096; ++i) w.WriteVarU64(rng.Next() >> rng.NextBounded(64));
  for (auto _ : state) {
    Reader r(buf);
    uint64_t v = 0;
    while (!r.AtEnd()) {
      (void)r.ReadVarU64(v);
      benchmark::DoNotOptimize(v);
    }
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_VarintDecode);

void BM_KvStreamWrite(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    KvWriter<uint32_t, double> w;
    for (size_t i = 0; i < n; ++i) w.Add(static_cast<uint32_t>(i), 0.5 * i);
    Buffer buf = std::move(w).Finish();
    benchmark::DoNotOptimize(buf.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KvStreamWrite)->Range(1 << 10, 1 << 16);

void BM_KvStreamRead(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  KvWriter<uint32_t, double> w;
  for (size_t i = 0; i < n; ++i) w.Add(static_cast<uint32_t>(i), 0.5 * i);
  const Buffer buf = std::move(w).Finish();
  for (auto _ : state) {
    KvReader<uint32_t, double> r(buf);
    uint32_t k;
    double v;
    uint64_t sum = 0;
    while (r.Next(k, v)) sum += k;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KvStreamRead)->Range(1 << 10, 1 << 16);

void BM_Crc32(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Crc32)->Range(1 << 12, 1 << 20);

}  // namespace
}  // namespace asyncmr::serde

BENCHMARK_MAIN();

// Figure 6 reproduction: Single Source Shortest Path — number of iterations
// to converge vs number of partitions (Graph A).
#include "bench_common.hpp"

using namespace asyncmr;

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);
  bench::PrintBanner(
      "Figure 6 — SSSP: iterations to converge vs #partitions (Graph A)", opts);
  const auto rows = bench::RunSsspSweep(opts);
  bench::PrintGraphSweep("Figure 6 series (iterations):", "iterations", rows, opts);
  return 0;
}

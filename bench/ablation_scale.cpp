// Ablation A4 — cluster-size scaling (paper Section VI "Scalability": the
// CluE 460-node experiment). Same PageRank workload across growing clusters;
// Eager's advantage should persist as global synchronization gets heavier on
// busy multi-tenant networks.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/partitioner.hpp"

using namespace asyncmr;

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);
  bench::PrintBanner("Ablation A4 — cluster scaling (8 .. 460 nodes)", opts);

  auto config = bench::GraphConfig(bench::PaperGraph::kA, opts);
  config.num_vertices = static_cast<graph::VertexId>(
      std::min<uint64_t>(config.num_vertices, opts.Scaled(70'000, 5000)));
  config.locality_window = std::max<graph::VertexId>(8, config.num_vertices / 1000);
  config.max_edge_age = 4 * config.locality_window;
  const auto g = graph::PreferentialAttachment(config);
  const uint32_t k = static_cast<uint32_t>(std::max<uint64_t>(8, opts.Scaled(400)));
  const auto part = graph::MultilevelPartition(g, k, opts.seed);
  std::printf("graph: %s, k=%u partitions\n\n", g.Describe().c_str(), k);

  apps::PageRankConfig pr;
  std::printf("%-10s %-14s %-14s %-10s\n", "nodes", "general(s)", "eager(s)",
              "speedup");
  for (uint32_t nodes : {8u, 32u, 128u, 460u}) {
    auto spec = nodes == 8 ? cluster::ClusterSpec::Ec2Large8()
                           : cluster::ClusterSpec::Cloud(nodes);
    cluster::SimCluster sim1(spec);
    const auto gen = apps::GeneralPageRank(sim1, g, part, pr);
    cluster::SimCluster sim2(spec);
    const auto eag = apps::EagerPageRank(sim2, g, part, pr);
    std::printf("%-10u %-14.0f %-14.0f %-10.1fx\n", nodes,
                gen.trace.total_seconds(), eag.trace.total_seconds(),
                gen.trace.total_seconds() / eag.trace.total_seconds());
  }
  std::printf("\nexpected shape: bigger clusters absorb map waves faster, but the\n"
              "per-iteration synchronization floor keeps Eager ahead\n");
  return 0;
}

// Ablation A1 — locality-enhancing partitioning (paper Sections II, V.B.2):
// how partitioner quality (edge cut) drives Eager PageRank's global-iteration
// count and time. Hash destroys locality; range keeps crawl order; BFS grows
// regions; multilevel is the METIS-style min-cut the paper uses.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/partitioner.hpp"

using namespace asyncmr;

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);
  bench::PrintBanner("Ablation A1 — partitioner quality vs Eager PageRank", opts);

  auto config = bench::GraphConfig(bench::PaperGraph::kA, opts);
  config.num_vertices = static_cast<graph::VertexId>(
      std::min<uint64_t>(config.num_vertices, opts.Scaled(70'000, 5000)));
  config.locality_window = std::max<graph::VertexId>(8, config.num_vertices / 1000);
  config.max_edge_age = 4 * config.locality_window;
  const auto g = graph::PreferentialAttachment(config);
  const uint32_t k = static_cast<uint32_t>(std::max<uint64_t>(4, opts.Scaled(100)));
  std::printf("graph: %s, k=%u partitions\n\n", g.Describe().c_str(), k);

  apps::PageRankConfig pr;
  struct Entry {
    const char* name;
    graph::Partitioning partitioning;
  };
  std::vector<Entry> entries;
  entries.push_back({"multilevel", graph::MultilevelPartition(g, k, opts.seed)});
  entries.push_back({"range", graph::RangePartition(g, k)});
  entries.push_back({"bfs", graph::BfsPartition(g, k, opts.seed)});
  entries.push_back({"hash", graph::HashPartition(g, k, opts.seed)});

  std::printf("%-12s %-8s %-12s %-12s %-14s\n", "partitioner", "cut%", "eager-iters",
              "eager-time", "local-iters");
  for (const auto& [name, partitioning] : entries) {
    const auto quality = graph::EvaluatePartition(g, partitioning);
    cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
    const auto result = apps::EagerPageRank(sim, g, partitioning, pr);
    std::printf("%-12s %-8.1f %-12u %-12.0f %-14llu\n", name,
                100 * quality.cut_fraction, result.trace.global_iterations(),
                result.trace.total_seconds(),
                static_cast<unsigned long long>(result.trace.total_local_iterations()));
  }
  std::printf("\nexpected shape: lower cut => fewer global iterations => less time\n");
  return 0;
}

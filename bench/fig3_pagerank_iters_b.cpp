// Figure 3 reproduction: PageRank — number of iterations to converge vs number of partitions
// (Graph B). Paper shape: General flat in partition count; Eager far lower
// at coarse partitionings, degenerating toward General as partitions shrink.
#include "bench_common.hpp"

using namespace asyncmr;

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);
  bench::PrintBanner(
      "Figure 3 — PageRank: number of iterations to converge vs #partitions (Graph B)", opts);
  const auto rows = bench::RunPageRankSweep(bench::PaperGraph::kB, opts);
  bench::PrintGraphSweep("Figure 3 series (iterations):", "iterations", rows, opts);
  return 0;
}

// Figure 8 reproduction: K-Means — iterations to converge for varying
// convergence thresholds (52 partitions, census-like data).
#include "bench_common.hpp"

using namespace asyncmr;

int main() {
  const auto opts = BenchOptions::FromEnv();
  bench::PrintBanner("Figure 8 — K-Means: iterations-to-converge vs threshold",
                     opts);
  const auto rows = bench::RunKmeansSweep(opts);
  bench::PrintKmeansSweep("Figure 8 series (iterations):", "iterations", rows, opts);
  return 0;
}

// Figure 8 reproduction: K-Means — iterations to converge for varying
// convergence thresholds (52 partitions, census-like data).
#include "bench_common.hpp"

using namespace asyncmr;

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);
  bench::PrintBanner("Figure 8 — K-Means: iterations-to-converge vs threshold",
                     opts);
  const auto rows = bench::RunKmeansSweep(opts);
  bench::PrintKmeansSweep("Figure 8 series (iterations):", "iterations", rows, opts);
  return 0;
}

// Shared sweep runners for the figure benchmarks.
//
// Scaling: every figure bench honours AMR_SCALE (default 1.0 = the paper's
// sizes). At scale s both the vertex/point counts AND the partition-count
// axis scale by s, preserving the partition-size regimes (n/k) the paper
// sweeps — so curve shapes are comparable at any scale. AMR_SEED seeds the
// generators; AMR_CSV=1 adds machine-readable rows.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/kmeans.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "common/options.hpp"
#include "common/status.hpp"
#include "graph/generator.hpp"
#include "graph/partition.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace asyncmr::bench {

/// Version of the one-line BENCH_* JSON records the figure benches append to
/// their trajectory files. Bump when a bench line gains/renames fields, and
/// document the change in the README's "Bench-line schema" section.
///   v1 — pre-versioned lines (no schema_version field)
///   v2 — adds schema_version itself
///   v3 — micro_des gains the calendar-queue and sharded-mode columns
///   v4 — ablation_faults gains the node-crash column (node_* fields);
///        ablation_chaos lines introduced
inline constexpr int kBenchSchemaVersion = 4;

/// Owns the optional observability sinks for a bench binary, resolved from
/// BenchOptions (--trace-out / --metrics-out / AMR_TRACE_OUT / ...). When
/// neither output is requested the session is inert: View() returns null
/// sinks and the instrumented code pays only its null-pointer guards.
///
/// Benches attach the session to ONE representative run (e.g. the largest-P
/// async cell), not every run — a trace of forty overlaid sweeps is noise.
class ObsSession {
 public:
  explicit ObsSession(const BenchOptions& opts);

  bool enabled() const { return trace_ != nullptr || metrics_ != nullptr; }

  /// The view instrumented code consumes (EngineTuning::obs). The sinks it
  /// points at live as long as this session.
  obs::Observability View();

  /// Writes the requested output files; no-op when disabled.
  Status Flush() const;

  /// Flush(), reporting failure to stderr instead of propagating (benches
  /// should still print their results when a sink path is unwritable).
  void FlushOrWarn() const;

  const obs::TraceSink* trace() const { return trace_.get(); }
  const obs::MetricsRegistry* metrics() const { return metrics_.get(); }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  double metrics_interval_s_ = 1.0;
  std::unique_ptr<obs::TraceSink> trace_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
};

/// The paper's partition-count axis (Figures 2-7).
inline const std::vector<uint32_t> kPaperPartitionCounts = {100,  200,  400, 800,
                                                            1600, 3200, 6400};

/// The paper's threshold axis (Figures 8-9).
inline const std::vector<double> kPaperThresholds = {0.1, 0.01, 0.001, 0.0001};

/// Partition counts scaled consistently with the workload scale.
std::vector<uint32_t> ScaledPartitionCounts(const BenchOptions& opts);

/// Which paper graph a bench runs on.
enum class PaperGraph { kA, kB };
graph::PrefAttachConfig GraphConfig(PaperGraph which, const BenchOptions& opts);

/// The power-law graph scenario shared by ablation_async and micro_des
/// (crawl-locality preferential attachment, multilevel-partitioned): one
/// definition so the perf-trajectory anchor and the ablation never drift.
struct AblationGraphScenario {
  graph::Digraph g;
  uint32_t k = 0;  // partition count
  graph::Partitioning part;
};
AblationGraphScenario BuildAblationGraphScenario(const BenchOptions& opts);

struct GraphSweepRow {
  uint32_t partitions = 0;
  double cut_fraction = 0.0;
  uint32_t general_iterations = 0;
  double general_seconds = 0.0;
  uint64_t general_ops = 0;
  uint32_t eager_iterations = 0;
  double eager_seconds = 0.0;
  uint64_t eager_ops = 0;
  uint64_t eager_local_iterations = 0;
  double speedup() const {
    return eager_seconds > 0 ? general_seconds / eager_seconds : 0.0;
  }
};

/// Runs General + Eager PageRank across the partition sweep on a fresh
/// Ec2Large8 cluster per run. Prints progress to stderr.
std::vector<GraphSweepRow> RunPageRankSweep(PaperGraph which, const BenchOptions& opts);

/// Same sweep for Single-Source Shortest Path (Graph A, random weights).
std::vector<GraphSweepRow> RunSsspSweep(const BenchOptions& opts);

struct KmeansSweepRow {
  double threshold = 0.0;
  uint32_t general_iterations = 0;
  double general_seconds = 0.0;
  uint32_t eager_iterations = 0;
  double eager_seconds = 0.0;
  uint64_t eager_local_iterations = 0;
  double general_sse = 0.0;
  double eager_sse = 0.0;
  double speedup() const {
    return eager_seconds > 0 ? general_seconds / eager_seconds : 0.0;
  }
};

/// Runs General + Eager K-Means across the paper's threshold axis with the
/// paper's fixed 52 partitions.
std::vector<KmeansSweepRow> RunKmeansSweep(const BenchOptions& opts);

/// Pretty-prints the graph sweep as the paper's figure series. `metric`
/// selects the emphasized column ("iterations" or "time").
void PrintGraphSweep(const std::string& figure_title, const std::string& metric,
                     const std::vector<GraphSweepRow>& rows,
                     const BenchOptions& opts);

void PrintKmeansSweep(const std::string& figure_title, const std::string& metric,
                      const std::vector<KmeansSweepRow>& rows,
                      const BenchOptions& opts);

/// Prints the standard bench banner (scale, seed, testbed).
void PrintBanner(const std::string& title, const BenchOptions& opts);

}  // namespace asyncmr::bench

// Determinism lint for the asyncmr tree.
//
// The simulator's whole value proposition is bit-reproducibility: every
// result in BENCH_*.json and every differential test assumes that a (seed,
// config) pair fixes the entire virtual timeline. Four classes of C++ are
// the classic ways that property silently dies, and this lint rejects them
// mechanically instead of hoping review catches them:
//
//   wall-clock            std::chrono / time() / clock() outside the
//                         explicit allowlist (common/stopwatch.hpp wraps the
//                         host clock for bench self-timing; simulation code
//                         must advance time only through sim::EventQueue).
//   randomness            rand() / std::random_device / locally-seeded
//                         std::mt19937 etc. outside common/rng — all
//                         stochastic draws must flow through the seeded,
//                         splittable asyncmr::Rng streams.
//   unordered-iteration   range-for over std::unordered_map/unordered_set:
//                         hash order is not part of the simulation contract,
//                         so iteration order leaking into emitted events,
//                         floating-point accumulation order or serialized
//                         bytes is the classic determinism bug. Sites that
//                         are genuinely order-insensitive (e.g. collecting
//                         keys that are sorted before use) carry a
//                         `// lint:order-insensitive` annotation on the loop
//                         line or the line above it.
//   raw-output            printf-family / std::cout / std::cerr from src/
//                         outside common/logging — all diagnostics go
//                         through AMR_LOG so tests can capture them and a
//                         log level gates them. (snprintf-to-buffer is
//                         formatting, not output, and is not flagged.)
//
// Any rule can also be suppressed on a specific line with
// `// lint:allow(<rule>)`. The checker is a deliberately dependency-free,
// single-file heuristic analyzer (comments and string literals are stripped,
// declarations are tracked per file, no real type resolution); the fixture
// tests in tests/test_lint.cpp pin exactly what it catches.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace asyncmr::lint {

struct Violation {
  std::string file;
  int line = 0;         // 1-based
  std::string rule;     // "wall-clock", "randomness", "unordered-iteration", "raw-output"
  std::string message;  // what was matched, and how to fix or annotate it
};

/// Lints one translation unit's text. `path` is used for reporting and for
/// the per-rule file allowlists (matched by path suffix).
std::vector<Violation> LintSource(std::string_view path, std::string_view content);

/// Reads and lints `path`. Unreadable files produce a single pseudo-violation
/// with rule "io-error" so a vanished file fails CI instead of passing it.
std::vector<Violation> LintFile(const std::string& path);

/// Lints every *.hpp/*.cpp/*.h/*.cc under `dir` (recursively), in sorted
/// path order so output and exit status are stable across filesystems.
std::vector<Violation> LintTree(const std::string& dir);

/// One "path:line: [rule] message" line.
std::string FormatViolation(const Violation& v);

}  // namespace asyncmr::lint

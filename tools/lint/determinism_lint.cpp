// determinism_lint — mechanical enforcement of asyncmr's determinism rules.
//
//   determinism_lint --root <repo-root>     lint <repo-root>/src recursively
//   determinism_lint <file>...              lint specific files (fixture tests)
//
// Exit status: 0 = clean, 1 = violations found, 2 = usage/IO error.
// See tools/lint/lint_core.hpp for the rules and suppression annotations.
// This binary deliberately depends on nothing but the standard library (it
// must build and run before — and regardless of — the simulator itself).
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint_core.hpp"

int main(int argc, char** argv) {
  using asyncmr::lint::Violation;

  std::vector<std::string> targets;
  bool tree_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "determinism_lint: --root needs a directory\n");
        return 2;
      }
      tree_mode = true;
      targets.push_back((std::filesystem::path(argv[++i]) / "src").string());
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: determinism_lint --root <repo-root> | <file>...\n");
      return 0;
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) {
    std::fprintf(stderr, "usage: determinism_lint --root <repo-root> | <file>...\n");
    return 2;
  }

  std::vector<Violation> violations;
  for (const std::string& target : targets) {
    std::vector<Violation> v = tree_mode ? asyncmr::lint::LintTree(target)
                                         : asyncmr::lint::LintFile(target);
    violations.insert(violations.end(), v.begin(), v.end());
  }

  for (const Violation& v : violations) {
    std::fprintf(stderr, "%s\n", asyncmr::lint::FormatViolation(v).c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "determinism_lint: %zu violation%s\n", violations.size(),
                 violations.size() == 1 ? "" : "s");
    return 1;
  }
  return 0;
}

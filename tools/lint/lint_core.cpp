#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace asyncmr::lint {
namespace {

// --- per-rule file allowlist (matched by path suffix) ------------------------
// The only places the banned constructs are the *point*: the host-clock
// stopwatch, the seeded RNG itself, and the logger/fatal-check sinks that ARE
// the sanctioned output path.
struct AllowEntry {
  const char* suffix;
  const char* rule;
};
constexpr AllowEntry kAllowlist[] = {
    {"common/stopwatch.hpp", "wall-clock"},
    {"common/rng.hpp", "randomness"},
    {"common/rng.cpp", "randomness"},
    {"common/logging.hpp", "raw-output"},
    {"common/logging.cpp", "raw-output"},
    // The fatal-check sink writes to stderr directly: when an invariant is
    // down, the logger may be part of what's broken.
    {"common/check.hpp", "raw-output"},
};

bool IsAllowlisted(std::string_view path, std::string_view rule) {
  std::string norm(path);
  std::replace(norm.begin(), norm.end(), '\\', '/');
  for (const AllowEntry& e : kAllowlist) {
    if (rule != e.rule) continue;
    const std::string_view suffix = e.suffix;
    if (norm.size() >= suffix.size() &&
        std::string_view(norm).substr(norm.size() - suffix.size()) == suffix) {
      return true;
    }
  }
  return false;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

// --- comment/string stripping ------------------------------------------------
// Returns a same-length copy of `src` with comments, string literals and char
// literals blanked to spaces (newlines preserved), so the rule matchers never
// fire on prose or quoted text. Annotations are read from the RAW text.
std::string StripCode(std::string_view src) {
  std::string out(src.size(), ' ');
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  St st = St::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          ++i;
        } else if (c == '"') {
          // Raw string literal? Look back for R / u8R / LR / uR / UR.
          size_t j = i;
          bool raw = false;
          if (j > 0 && src[j - 1] == 'R' &&
              (j == 1 || !IsIdentChar(src[j - 2]) || src[j - 2] == '8')) {
            raw = true;
          }
          if (raw) {
            st = St::kRawString;
            raw_delim.clear();
            for (size_t k = i + 1; k < src.size() && src[k] != '('; ++k) {
              raw_delim.push_back(src[k]);
            }
          } else {
            st = St::kString;
          }
        } else if (c == '\'') {
          st = St::kChar;
        } else {
          out[i] = c;
        }
        break;
      case St::kLineComment:
        if (c == '\n') st = St::kCode;
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          st = St::kCode;
          ++i;
        }
        break;
      case St::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          st = St::kCode;
        }
        break;
      case St::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        }
        break;
      case St::kRawString: {
        const std::string closer = ")" + raw_delim + "\"";
        if (c == ')' && src.substr(i, closer.size()) == closer) {
          i += closer.size() - 1;
          st = St::kCode;
        }
        break;
      }
    }
    if (c == '\n') out[i] = '\n';
  }
  return out;
}

// --- line bookkeeping --------------------------------------------------------
std::vector<size_t> LineStarts(std::string_view text) {
  std::vector<size_t> starts{0};
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

int LineOf(const std::vector<size_t>& starts, size_t pos) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), pos);
  return static_cast<int>(it - starts.begin());  // 1-based
}

std::string_view RawLine(std::string_view raw, const std::vector<size_t>& starts,
                         int line) {
  if (line < 1 || static_cast<size_t>(line) > starts.size()) return {};
  const size_t begin = starts[static_cast<size_t>(line) - 1];
  const size_t end = static_cast<size_t>(line) < starts.size()
                         ? starts[static_cast<size_t>(line)]
                         : raw.size();
  return raw.substr(begin, end - begin);
}

/// `// lint:allow(<rule>)` on the flagged line suppresses any rule; the
/// unordered-iteration rule additionally honours its dedicated
/// `// lint:order-insensitive` annotation on the loop line or the line above
/// (range-fors regularly sit under a justification comment).
bool Suppressed(std::string_view raw, const std::vector<size_t>& starts, int line,
                std::string_view rule) {
  const std::string allow = "lint:allow(" + std::string(rule) + ")";
  if (RawLine(raw, starts, line).find(allow) != std::string_view::npos) return true;
  if (rule == "unordered-iteration") {
    for (int l = line; l >= line - 1 && l >= 1; --l) {
      if (RawLine(raw, starts, l).find("lint:order-insensitive") !=
          std::string_view::npos) {
        return true;
      }
    }
  }
  return false;
}

// --- token scanning helpers --------------------------------------------------
size_t SkipWs(std::string_view s, size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
  return i;
}

size_t PrevSig(std::string_view s, size_t i) {  // index of prev non-ws, or npos
  while (i > 0) {
    --i;
    if (!std::isspace(static_cast<unsigned char>(s[i]))) return i;
  }
  return std::string_view::npos;
}

bool InSet(std::string_view needle, std::initializer_list<std::string_view> set) {
  for (std::string_view s : set) {
    if (needle == s) return true;
  }
  return false;
}

/// Is the identifier at [begin, end) a bare call target or qualified only by
/// `std::`? Member accesses (`x.time(`, `p->clock(`) and foreign qualifiers
/// (`sim::clock(`) are someone else's function and not flagged, and neither
/// are declarations of same-named members (`double time() const`).
bool BareOrStdQualified(std::string_view code, size_t begin) {
  // Suffix of a longer identifier (caller bug): adjacency matters, so look
  // at the immediately preceding char — PrevSig would skip the whitespace
  // in `return rand()` and land on the `n` of the keyword.
  if (begin > 0 && IsIdentChar(code[begin - 1])) return false;
  const size_t p = PrevSig(code, begin);
  if (p == std::string_view::npos) return true;
  const char c = code[p];
  if (c == '.') return false;                       // member call
  if (c == '>' && p > 0 && code[p - 1] == '-') return false;  // arrow call
  if (IsIdentChar(c)) {
    // Preceded by another identifier: a declaration's type name
    // (`double time()`) — not a call — unless it is a statement keyword
    // (`return rand()`).
    size_t b = p + 1;
    while (b > 0 && IsIdentChar(code[b - 1])) --b;
    return InSet(code.substr(b, p + 1 - b),
                 {"return", "co_return", "co_yield", "co_await", "throw",
                  "case", "else", "do"});
  }
  if (c == ':' && p > 0 && code[p - 1] == ':') {
    // Qualified: only std:: counts as the banned global facility.
    size_t q = p - 1;
    const size_t qp = PrevSig(code, q);
    if (qp == std::string_view::npos) return false;
    size_t qe = qp + 1;
    size_t qb = qe;
    while (qb > 0 && IsIdentChar(code[qb - 1])) --qb;
    return code.substr(qb, qe - qb) == "std";
  }
  return true;
}

struct Ident {
  size_t begin;
  size_t end;
  std::string_view text;
};

std::vector<Ident> Identifiers(std::string_view code) {
  std::vector<Ident> ids;
  for (size_t i = 0; i < code.size();) {
    if (IsIdentStart(code[i])) {
      size_t j = i + 1;
      while (j < code.size() && IsIdentChar(code[j])) ++j;
      ids.push_back({i, j, code.substr(i, j - i)});
      i = j;
    } else {
      ++i;
    }
  }
  return ids;
}

/// Advances past a balanced `<...>` starting at the '<' at `i`; returns the
/// index just past the matching '>'. Each '>' closes one level, so `>>`
/// closes two (template context; shift operators inside non-type arguments
/// are rare enough to ignore in a heuristic linter).
size_t SkipTemplateArgs(std::string_view code, size_t i) {
  int depth = 0;
  for (; i < code.size(); ++i) {
    if (code[i] == '<') {
      ++depth;
    } else if (code[i] == '>') {
      if (--depth == 0) return i + 1;
    }
  }
  return i;
}

// --- unordered-container declaration tracking --------------------------------
struct UnorderedDecls {
  std::vector<std::string> aliases;  // using/typedef names for unordered types
  std::vector<std::string> vars;     // variables/members/params of unordered type
  std::vector<std::string> fns;      // functions returning unordered refs/values
};

bool Contains(const std::vector<std::string>& v, std::string_view s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

/// Collects `using NAME = ...unordered_map/set...;` and
/// `typedef ...unordered... NAME;` alias names.
void CollectAliases(std::string_view code, const std::vector<Ident>& ids,
                    UnorderedDecls* decls) {
  for (size_t k = 0; k < ids.size(); ++k) {
    if (ids[k].text == "using" && k + 1 < ids.size()) {
      const size_t eq = SkipWs(code, ids[k + 1].end);
      if (eq < code.size() && code[eq] == '=') {
        const size_t semi = code.find(';', eq);
        const std::string_view rhs =
            code.substr(eq, semi == std::string_view::npos ? code.size() - eq
                                                           : semi - eq);
        if (rhs.find("unordered_map") != std::string_view::npos ||
            rhs.find("unordered_set") != std::string_view::npos) {
          decls->aliases.emplace_back(ids[k + 1].text);
        }
      }
    } else if (ids[k].text == "typedef") {
      const size_t semi = code.find(';', ids[k].end);
      if (semi == std::string_view::npos) continue;
      const std::string_view body = code.substr(ids[k].end, semi - ids[k].end);
      if (body.find("unordered_map") == std::string_view::npos &&
          body.find("unordered_set") == std::string_view::npos) {
        continue;
      }
      // The alias is the last identifier before the ';'.
      size_t m = k + 1;
      while (m < ids.size() && ids[m].end <= semi) ++m;
      if (m > k + 1) decls->aliases.emplace_back(ids[m - 1].text);
    }
  }
}

/// Records names declared with an unordered type: after the type token (and
/// its balanced template arguments), skipping const/&/*, an identifier
/// followed by '(' is a function returning the unordered type, anything else
/// is a variable/member/parameter. A '>' right after the type means it was
/// nested inside another template (vector<unordered_map<...>>) — iterating
/// THAT outer container is order-stable, so nothing is recorded.
void CollectDeclarations(std::string_view code, const std::vector<Ident>& ids,
                         UnorderedDecls* decls) {
  for (const Ident& id : ids) {
    const bool is_unordered =
        id.text == "unordered_map" || id.text == "unordered_set";
    const bool is_alias = !is_unordered && Contains(decls->aliases, id.text);
    if (!is_unordered && !is_alias) continue;
    size_t i = SkipWs(code, id.end);
    if (is_unordered) {
      if (i >= code.size() || code[i] != '<') continue;  // e.g. bare mention
      i = SkipTemplateArgs(code, i);
    }
    // Skip const/&/* between type and declared name.
    for (;;) {
      i = SkipWs(code, i);
      if (i < code.size() && (code[i] == '&' || code[i] == '*')) {
        ++i;
        continue;
      }
      if (code.substr(i, 5) == "const" &&
          (i + 5 >= code.size() || !IsIdentChar(code[i + 5]))) {
        i += 5;
        continue;
      }
      break;
    }
    if (i >= code.size() || !IsIdentStart(code[i])) continue;
    size_t j = i + 1;
    while (j < code.size() && IsIdentChar(code[j])) ++j;
    const std::string name(code.substr(i, j - i));
    const size_t after = SkipWs(code, j);
    if (after < code.size() && code[after] == '(') {
      decls->fns.push_back(name);
    } else {
      decls->vars.push_back(name);
    }
  }
}

/// The identifier a range-for expression ultimately yields: the call name for
/// a trailing call (`intermediate.groups()` -> groups), otherwise the
/// trailing identifier (`other.combined_` -> combined_).
std::string_view RangeExprBase(std::string_view expr) {
  size_t end = expr.size();
  while (end > 0 && std::isspace(static_cast<unsigned char>(expr[end - 1]))) --end;
  if (end == 0) return {};
  if (expr[end - 1] == ')') {
    int depth = 0;
    size_t i = end;
    while (i > 0) {
      --i;
      if (expr[i] == ')') ++depth;
      if (expr[i] == '(' && --depth == 0) break;
    }
    end = i;
    while (end > 0 && std::isspace(static_cast<unsigned char>(expr[end - 1]))) --end;
  }
  size_t begin = end;
  while (begin > 0 && IsIdentChar(expr[begin - 1])) --begin;
  return expr.substr(begin, end - begin);
}

// --- the linter --------------------------------------------------------------
class Linter {
 public:
  Linter(std::string_view path, std::string_view raw)
      : path_(path),
        raw_(raw),
        code_(StripCode(raw)),
        lines_(LineStarts(raw)),
        ids_(Identifiers(code_)) {}

  std::vector<Violation> Run() {
    CollectAliases(code_, ids_, &decls_);
    CollectDeclarations(code_, ids_, &decls_);
    CheckIncludes();
    CheckIdentifiers();
    CheckRangeFors();
    std::sort(out_.begin(), out_.end(), [](const Violation& a, const Violation& b) {
      return std::tie(a.line, a.rule, a.message) <
             std::tie(b.line, b.rule, b.message);
    });
    return std::move(out_);
  }

 private:
  void Report(size_t pos, std::string rule, std::string message) {
    const int line = LineOf(lines_, pos);
    if (IsAllowlisted(path_, rule)) return;
    if (Suppressed(raw_, lines_, line, rule)) return;
    out_.push_back({std::string(path_), line, std::move(rule), std::move(message)});
  }

  void CheckIncludes() {
    for (size_t l = 0; l < lines_.size(); ++l) {
      const std::string_view line = RawLine(code_, lines_, static_cast<int>(l) + 1);
      const size_t hash = line.find('#');
      if (hash == std::string_view::npos ||
          line.find("include", hash) == std::string_view::npos) {
        continue;
      }
      if (line.find("<chrono>") != std::string_view::npos) {
        Report(lines_[l] + hash, "wall-clock",
               "#include <chrono>: simulation code must take time from "
               "sim::EventQueue (host timing lives in common/stopwatch.hpp)");
      }
      if (line.find("<random>") != std::string_view::npos) {
        Report(lines_[l] + hash, "randomness",
               "#include <random>: all stochastic draws must come from the "
               "seeded streams in common/rng");
      }
    }
  }

  void CheckIdentifiers() {
    for (size_t k = 0; k < ids_.size(); ++k) {
      const Ident& id = ids_[k];
      const size_t after = SkipWs(code_, id.end);
      const bool called = after < code_.size() && code_[after] == '(';

      if (id.text == "chrono" && StdQualifiedHere(id)) {
        Report(id.begin, "wall-clock",
               "std::chrono: virtual time comes from sim::EventQueue; host "
               "timing belongs in common/stopwatch.hpp or bench mains");
        continue;
      }
      if (called && BareOrStdQualified(code_, id.begin) &&
          InSet(id.text, {"time", "clock", "gettimeofday", "clock_gettime",
                          "localtime", "gmtime", "mktime", "difftime"})) {
        Report(id.begin, "wall-clock",
               std::string(id.text) +
                   "(): wall-clock reads are nondeterministic; use "
                   "sim::EventQueue::now() or common/stopwatch.hpp");
        continue;
      }
      if (called && BareOrStdQualified(code_, id.begin) &&
          InSet(id.text, {"rand", "srand"})) {
        Report(id.begin, "randomness",
               std::string(id.text) +
                   "(): unseeded libc randomness; draw from asyncmr::Rng");
        continue;
      }
      if (InSet(id.text,
                {"random_device", "mt19937", "mt19937_64", "minstd_rand",
                 "minstd_rand0", "default_random_engine", "ranlux24",
                 "ranlux48", "knuth_b"})) {
        Report(id.begin, "randomness",
               "std::" + std::string(id.text) +
                   ": locally-seeded std engines break seed purity; derive a "
                   "substream via asyncmr::Rng::Split instead");
        continue;
      }
      if (called && BareOrStdQualified(code_, id.begin) &&
          InSet(id.text, {"printf", "fprintf", "vprintf", "vfprintf", "puts",
                          "fputs", "putchar", "fputc", "perror"})) {
        Report(id.begin, "raw-output",
               std::string(id.text) +
                   "(): direct output from src/; route diagnostics through "
                   "AMR_LOG (common/logging)");
        continue;
      }
      if (InSet(id.text, {"cout", "cerr", "clog"}) && StdQualifiedHere(id)) {
        Report(id.begin, "raw-output",
               "std::" + std::string(id.text) +
                   ": direct output from src/; route diagnostics through "
                   "AMR_LOG (common/logging)");
      }
    }
  }

  bool StdQualifiedHere(const Ident& id) const {
    const size_t p = PrevSig(code_, id.begin);
    if (p == std::string_view::npos || code_[p] != ':' || p == 0 ||
        code_[p - 1] != ':') {
      return false;
    }
    size_t qe = PrevSig(code_, p - 1);
    if (qe == std::string_view::npos) return false;
    size_t qb = qe + 1;
    while (qb > 0 && IsIdentChar(code_[qb - 1])) --qb;
    return code_.substr(qb, qe + 1 - qb) == "std";
  }

  void CheckRangeFors() {
    for (size_t k = 0; k < ids_.size(); ++k) {
      if (ids_[k].text != "for") continue;
      size_t open = SkipWs(code_, ids_[k].end);
      if (open >= code_.size() || code_[open] != '(') continue;
      // Find the matching ')'.
      int depth = 0;
      size_t close = open;
      for (; close < code_.size(); ++close) {
        if (code_[close] == '(') ++depth;
        if (code_[close] == ')' && --depth == 0) break;
      }
      if (close >= code_.size()) continue;
      // Range-for iff a single ':' (not '::') at paren depth 1.
      size_t colon = std::string_view::npos;
      depth = 0;
      for (size_t i = open; i < close; ++i) {
        const char c = code_[i];
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') --depth;
        if (c == ':' && depth == 1) {
          if ((i > open && code_[i - 1] == ':') ||
              (i + 1 < close && code_[i + 1] == ':')) {
            continue;
          }
          colon = i;
          break;
        }
      }
      if (colon == std::string_view::npos) continue;
      // View into code_ itself — std::string::substr would return a
      // temporary and leave the view dangling.
      const std::string_view expr =
          std::string_view(code_).substr(colon + 1, close - colon - 1);
      const std::string_view base = RangeExprBase(expr);
      const bool unordered =
          expr.find("unordered_") != std::string_view::npos ||
          (!base.empty() &&
           (Contains(decls_.vars, base) || Contains(decls_.fns, base)));
      if (!unordered) continue;
      Report(ids_[k].begin, "unordered-iteration",
             "range-for over unordered container '" + std::string(base) +
                 "': hash order is not deterministic contract; iterate a "
                 "sorted copy, or annotate the loop `// lint:order-insensitive`"
                 " if downstream effects are provably order-free");
    }
  }

  std::string_view path_;
  std::string_view raw_;
  std::string code_;
  std::vector<size_t> lines_;
  std::vector<Ident> ids_;
  UnorderedDecls decls_;
  std::vector<Violation> out_;
};

}  // namespace

std::vector<Violation> LintSource(std::string_view path, std::string_view content) {
  return Linter(path, content).Run();
}

std::vector<Violation> LintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 0, "io-error", "cannot read file"}};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  return LintSource(path, content);
}

std::vector<Violation> LintTree(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
      files.push_back(it->path().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Violation> all;
  for (const std::string& f : files) {
    std::vector<Violation> v = LintFile(f);
    all.insert(all.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  }
  return all;
}

std::string FormatViolation(const Violation& v) {
  std::ostringstream os;
  os << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message;
  return os.str();
}

}  // namespace asyncmr::lint

// Example: PageRank over a synthetic web crawl — the paper's flagship
// application. Generates a crawl-ordered power-law graph, partitions it with
// the multilevel (METIS-style) partitioner, and runs General vs Eager
// PageRank side by side, reporting the global-iteration and time savings.
//
// Environment: AMR_SCALE scales the graph (default here: 30K vertices).
#include <cstdio>

#include "apps/pagerank.hpp"
#include "common/options.hpp"
#include "common/string_util.hpp"
#include "graph/generator.hpp"
#include "graph/partitioner.hpp"
#include "graph/powerlaw.hpp"

using namespace asyncmr;

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);

  graph::PrefAttachConfig config;
  config.num_vertices = static_cast<graph::VertexId>(opts.Scaled(30'000, 2'000));
  config.num_in = 3;
  config.num_out = 3;
  config.locality_window = std::max<graph::VertexId>(8, config.num_vertices / 1000);
  config.max_edge_age = 4 * config.locality_window;
  config.seed = opts.seed;

  std::printf("generating web graph (%s vertices)...\n",
              WithThousands(config.num_vertices).c_str());
  const auto g = graph::PreferentialAttachment(config);
  const auto fit = graph::FitInDegreePowerLaw(g);
  std::printf("  %s, in-degree power-law alpha=%.2f\n\n", g.Describe().c_str(),
              fit.exponent);

  const uint32_t k = std::max<uint32_t>(4, g.num_vertices() / 700);
  std::printf("partitioning into %u locality-enhanced partitions (multilevel)...\n", k);
  const auto part = graph::MultilevelPartition(g, k, opts.seed);
  const auto quality = graph::EvaluatePartition(g, part);
  std::printf("  %s\n\n", quality.ToString().c_str());

  apps::PageRankConfig pr;

  std::printf("General PageRank (one MapReduce job per iteration)...\n");
  cluster::SimCluster general_cluster(cluster::ClusterSpec::Ec2Large8());
  const auto general = apps::GeneralPageRank(general_cluster, g, part, pr);
  std::printf("  %u global iterations, %s virtual time\n\n",
              general.trace.global_iterations(),
              HumanSeconds(general.trace.total_seconds()).c_str());

  std::printf("Eager PageRank (local MapReduce to convergence inside each gmap)...\n");
  cluster::SimCluster eager_cluster(cluster::ClusterSpec::Ec2Large8());
  const auto eager = apps::EagerPageRank(eager_cluster, g, part, pr);
  std::printf("  %u global iterations (+%s partial synchronizations), %s virtual time\n\n",
              eager.trace.global_iterations(),
              WithThousands(eager.trace.total_local_iterations()).c_str(),
              HumanSeconds(eager.trace.total_seconds()).c_str());

  // Same answer, verified against the serial oracle.
  const auto serial = apps::SerialPageRank(g, pr);
  double general_err = 0, eager_err = 0;
  for (size_t v = 0; v < serial.size(); ++v) {
    general_err = std::max(general_err, std::abs(general.ranks[v] - serial[v]));
    eager_err = std::max(eager_err, std::abs(eager.ranks[v] - serial[v]));
  }
  std::printf("correctness: max |rank - serial oracle| general=%.1e eager=%.1e\n",
              general_err, eager_err);
  std::printf("speedup: %.1fx (%u -> %u global synchronizations)\n",
              general.trace.total_seconds() / eager.trace.total_seconds(),
              general.trace.global_iterations(), eager.trace.global_iterations());

  // Top pages.
  std::vector<std::pair<double, graph::VertexId>> top;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    top.emplace_back(eager.ranks[v], v);
  }
  std::partial_sort(top.begin(), top.begin() + 5, top.end(), std::greater<>());
  std::printf("\ntop pages by rank:\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  #%d vertex %-8u rank %.2f (in-degree %u)\n", i + 1, top[i].second,
                top[i].first, g.InDegrees()[top[i].second]);
  }
  return 0;
}

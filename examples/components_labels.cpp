// Example: Connected Components — one of the "broader applicability" classes
// the paper claims for partial synchronization (Section VI: "minimum
// spanning trees, transitive closure, and connected components"). Built
// entirely on the SSSP engine via zero-weight min-label propagation.
#include <cstdio>

#include "apps/components.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "graph/generator.hpp"
#include "graph/partitioner.hpp"

using namespace asyncmr;

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);

  // A community graph with a known number of islands.
  const uint32_t islands = 12;
  const uint32_t island_size = static_cast<uint32_t>(opts.Scaled(2'000, 200));
  std::vector<graph::Edge> edges;
  Rng rng(opts.seed);
  for (uint32_t i = 0; i < islands; ++i) {
    const uint32_t base = i * island_size;
    for (uint32_t v = 1; v < island_size; ++v) {
      edges.push_back({base + static_cast<graph::VertexId>(rng.NextBounded(v)),
                       base + v, 1.0});
    }
    for (uint32_t c = 0; c < island_size; ++c) {
      const auto a = static_cast<graph::VertexId>(rng.NextBounded(island_size));
      const auto b = static_cast<graph::VertexId>(rng.NextBounded(island_size));
      if (a != b) edges.push_back({base + a, base + b, 1.0});
    }
  }
  const auto g =
      graph::Digraph::FromEdges(islands * island_size, std::move(edges));
  std::printf("graph: %s in %u hidden communities\n", g.Describe().c_str(), islands);

  const uint32_t k = 16;
  const auto part = graph::MultilevelPartition(g, k, opts.seed);

  apps::ComponentsConfig config;
  std::printf(
      "running General vs Eager vs Async label propagation (k=%u partitions)"
      "...\n\n", k);
  cluster::SimCluster general_cluster(cluster::ClusterSpec::Ec2Large8());
  const auto general = apps::GeneralComponents(general_cluster, g, part, config);
  cluster::SimCluster eager_cluster(cluster::ClusterSpec::Ec2Large8());
  const auto eager = apps::EagerComponents(eager_cluster, g, part, config);
  cluster::SimCluster async_cluster(cluster::ClusterSpec::Ec2Large8());
  async::AsyncResult stats;
  const auto barrier_free = apps::AsyncComponents(
      async_cluster, g, part, config, async::kUnboundedStaleness, &stats);

  std::printf("General: %u components in %u iterations (%s virtual)\n",
              general.num_components, general.trace.global_iterations(),
              HumanSeconds(general.trace.total_seconds()).c_str());
  std::printf("Eager:   %u components in %u iterations (%s virtual)\n",
              eager.num_components, eager.trace.global_iterations(),
              HumanSeconds(eager.trace.total_seconds()).c_str());
  std::printf("Async:   %u components in %llu worker iterations (%s virtual)\n",
              barrier_free.num_components,
              static_cast<unsigned long long>(stats.total_iterations),
              HumanSeconds(stats.seconds()).c_str());

  const auto oracle = apps::SerialComponents(apps::Symmetrized(g));
  const bool exact = eager.labels == oracle && general.labels == oracle &&
                     barrier_free.labels == oracle;
  std::printf("\ncorrectness vs union-find: %s\n", exact ? "exact match" : "MISMATCH");
  std::printf("speedup over general: eager %.1fx, async %.1fx\n",
              general.trace.total_seconds() / eager.trace.total_seconds(),
              general.trace.total_seconds() / stats.seconds());
  return exact ? 0 : 1;
}

// Example: K-Means clustering of census-like demographic records — the
// paper's third application (US Census 1990 sample, 200K x 68 attributes).
// Compares General (Mahout-style) with Eager (local Lloyd iterations per
// gmap, reshuffled partitions, oscillation detection) across quality and
// cost, validated against serial Lloyd.
#include <cstdio>

#include "apps/kmeans.hpp"
#include "common/options.hpp"
#include "common/string_util.hpp"

using namespace asyncmr;

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);

  apps::CensusLikeConfig data_config;
  data_config.num_points = static_cast<uint32_t>(opts.Scaled(40'000, 4'000));
  data_config.seed = opts.seed;
  std::printf("generating census-like dataset: %s rows x %u attributes...\n",
              WithThousands(data_config.num_points).c_str(), data_config.dims);
  const auto data = apps::GenerateCensusLike(data_config);

  apps::KMeansConfig km;
  km.k = 16;
  km.threshold = 0.001;
  km.seed = opts.seed + 3;
  std::printf("clustering into k=%u, movement threshold %g, %u partitions\n\n", km.k,
              km.threshold, km.num_partitions);

  const auto lloyd = apps::SerialLloyd(data, km);
  std::printf("serial Lloyd:    %3u iterations, SSE %.4g\n",
              lloyd.trace.global_iterations(), lloyd.sse);

  cluster::SimCluster general_cluster(cluster::ClusterSpec::Ec2Large8());
  const auto general = apps::GeneralKMeans(general_cluster, data, km);
  std::printf("General K-Means: %3u iterations, SSE %.4g, %s virtual time\n",
              general.trace.global_iterations(), general.sse,
              HumanSeconds(general.trace.total_seconds()).c_str());

  cluster::SimCluster eager_cluster(cluster::ClusterSpec::Ec2Large8());
  const auto eager = apps::EagerKMeans(eager_cluster, data, km);
  std::printf("Eager K-Means:   %3u iterations, SSE %.4g, %s virtual time%s\n",
              eager.trace.global_iterations(), eager.sse,
              HumanSeconds(eager.trace.total_seconds()).c_str(),
              eager.stopped_on_oscillation ? " (stopped on oscillation)" : "");

  cluster::SimCluster async_cluster(cluster::ClusterSpec::Ec2Large8());
  async::AsyncResult stats;
  const auto barrier_free = apps::AsyncKMeans(async_cluster, data, km,
                                              async::kUnboundedStaleness, &stats);
  std::printf("Async K-Means:   %3llu worker iterations, SSE %.4g, %s virtual "
              "time (%s merge ops charged)\n\n",
              static_cast<unsigned long long>(stats.total_iterations),
              barrier_free.sse, HumanSeconds(stats.seconds()).c_str(),
              WithThousands(stats.total_merge_ops).c_str());

  std::printf("quality vs lloyd (SSE ratio, 1.0 = identical): eager %.3f, "
              "async %.3f\n",
              eager.sse / lloyd.sse, barrier_free.sse / lloyd.sse);
  std::printf("speedup: %.1fx (%u -> %u global synchronizations, %s partial); "
              "async %.1fx with no synchronizations at all\n",
              general.trace.total_seconds() / eager.trace.total_seconds(),
              general.trace.global_iterations(), eager.trace.global_iterations(),
              WithThousands(eager.trace.total_local_iterations()).c_str(),
              general.trace.total_seconds() / stats.seconds());
  return 0;
}

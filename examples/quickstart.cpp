// Quickstart: the asyncmr API in two acts.
//
//   Act 1 — classic MapReduce on the simulated cluster: word count with the
//           typed Job<> front end.
//   Act 2 — the paper's partial-synchronization API: the same four-function
//           (lmap / lreduce / gemit / greduce) structure computing an
//           iterative average consensus over a ring, eagerly iterating each
//           partition to local convergence between global synchronizations.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/options.hpp"
#include "core/partial_sync_job.hpp"
#include "mr/job.hpp"

using namespace asyncmr;

namespace {

void WordCountAct(cluster::SimCluster& sim) {
  std::printf("--- Act 1: word count (classic MapReduce) ---\n");
  const std::vector<std::vector<std::string>> docs = {
      {"partial", "synchronization", "beats", "global", "synchronization"},
      {"eager", "scheduling", "hides", "global", "latency"},
      {"locality", "makes", "partial", "synchronization", "work"},
  };

  mr::JobConfig config;
  config.name = "wordcount";
  config.num_reducers = 4;
  config.write_output_to_dfs = false;

  mr::Job<std::string, uint64_t, std::string, uint64_t> job(sim, config);
  job.set_mapper([&docs](uint32_t split, mr::MapContext<std::string, uint64_t>& ctx) {
    for (const auto& word : docs[split]) ctx.Emit(word, 1);
  });
  job.set_combiner([](const uint64_t& a, const uint64_t& b) { return a + b; });
  job.set_reducer([](const std::string& word, const std::vector<uint64_t>& counts,
                     mr::ReduceContext<std::string, uint64_t>& ctx) {
    uint64_t total = 0;
    for (uint64_t c : counts) total += c;
    ctx.Emit(word, total);
  });

  auto out = job.RunBlocking(std::vector<mr::SplitDesc>(docs.size()));
  std::map<std::string, uint64_t> sorted(out.records.begin(), out.records.end());
  for (const auto& [word, count] : sorted) {
    std::printf("  %-16s %llu\n", word.c_str(), static_cast<unsigned long long>(count));
  }
  std::printf("  (job took %.1f virtual seconds on the simulated cluster)\n\n",
              out.raw.stats.elapsed());
}

void PartialSyncAct(cluster::SimCluster& sim) {
  std::printf("--- Act 2: partial synchronization (the paper's API) ---\n");
  // A ring of 64 cells, two partitions. Each cell repeatedly averages with
  // its ring neighbors; the fixed point is the global average. Internal
  // neighbors are handled by eager local iterations; the two edges crossing
  // the partition boundary are reconciled by the global reduce.
  constexpr uint32_t kCells = 64;
  std::vector<uint32_t> all(kCells);
  for (uint32_t i = 0; i < kCells; ++i) all[i] = i;
  std::vector<std::vector<uint32_t>> parts = {
      {all.begin(), all.begin() + kCells / 2}, {all.begin() + kCells / 2, all.end()}};
  std::vector<double> value(kCells);
  for (uint32_t i = 0; i < kCells; ++i) value[i] = i < kCells / 2 ? 0.0 : 10.0;

  using Psj = core::PartialSyncJob<uint32_t, uint32_t, double>;
  Psj::Config config;
  config.job.num_reducers = 2;
  config.job.write_output_to_dfs = false;
  config.local.max_local_iterations = 200;
  config.local.lcombine = [](const double& a, const double& b) { return a + b; };
  Psj psj(sim, config);

  auto part_of = [&](uint32_t cell) { return cell < kCells / 2 ? 0u : 1u; };
  psj.set_partition_data(
      [&parts](uint32_t p) { return std::span<const uint32_t>(parts[p]); });
  psj.set_init_state([&](uint32_t p) {
    core::LocalState<uint32_t, double> state;
    for (uint32_t cell : parts[p]) state.emplace(cell, value[cell]);
    return state;
  });
  // lmap: send half my value to each ring neighbor *within my partition*;
  // boundary contributions stay frozen until the global synchronization.
  psj.set_lmap([&](const uint32_t& cell, const core::LocalState<uint32_t, double>& s,
                   core::LocalIntermediate<uint32_t, double>& out) {
    const uint32_t left = (cell + kCells - 1) % kCells;
    const uint32_t right = (cell + 1) % kCells;
    const double half = s.at(cell) / 2.0;
    for (uint32_t n : {left, right}) {
      if (part_of(n) == part_of(cell)) {
        out.EmitLocalIntermediate(n, half);
      } else {
        out.EmitLocalIntermediate(cell, half);  // reflect at the boundary
      }
    }
  });
  psj.set_lreduce([](const uint32_t& cell, const std::vector<double>& vs,
                     const core::LocalState<uint32_t, double>&,
                     core::LocalReduceContext<uint32_t, double>& ctx) {
    double sum = 0;
    for (double v : vs) sum += v;
    ctx.EmitLocal(cell, sum);
  });
  psj.set_local_convergence([](const core::LocalState<uint32_t, double>& prev,
                               const core::LocalState<uint32_t, double>& next,
                               uint32_t) {
    for (const auto& [k, v] : next) {
      if (std::abs(v - prev.at(k)) > 1e-9) return false;
    }
    return true;
  });
  // gmap output (default): the whole hashtable. greduce: keep the value, now
  // exchanging the true boundary flows.
  psj.set_gemit([&](uint32_t p, const core::LocalState<uint32_t, double>& s,
                    mr::MapContext<uint32_t, double>& ctx) {
    for (uint32_t cell : parts[p]) {
      const uint32_t left = (cell + kCells - 1) % kCells;
      const uint32_t right = (cell + 1) % kCells;
      const double half = s.at(cell) / 2.0;
      ctx.Emit(left, half);
      ctx.Emit(right, half);
    }
  });
  psj.set_greduce([](const uint32_t& cell, const std::vector<double>& vs,
                     mr::ReduceContext<uint32_t, double>& ctx) {
    double sum = 0;
    for (double v : vs) sum += v;
    ctx.Emit(cell, sum);
  });

  for (uint32_t round = 0; round < 40; ++round) {
    auto out = psj.RunGlobalIteration(std::vector<mr::SplitDesc>(2));
    double residual = 0;
    for (const auto& [cell, v] : out.records) {
      residual = std::max(residual, std::abs(v - value[cell]));
      value[cell] = v;
    }
    if (round % 10 == 0 || residual < 1e-6) {
      std::printf("  round %-3u residual %.2e (partial syncs this round: %u)\n",
                  round, residual, psj.last_local_iterations());
    }
    if (residual < 1e-6) break;
  }
  std::printf("  consensus value ~ %.4f (expected 5.0)\n\n", value[0]);
}

}  // namespace

int main(int argc, char** argv) {
  (void)BenchOptions::FromEnv(argc, argv);  // applies AMR_LOG_LEVEL/--log-level
  cluster::SimCluster sim(cluster::ClusterSpec::Ec2Large8());
  std::printf("asyncmr quickstart — simulated testbed: %s\n\n",
              sim.spec().Describe().c_str());
  WordCountAct(sim);
  PartialSyncAct(sim);
  std::printf("done. Explore examples/pagerank_web.cpp next.\n");
  return 0;
}

// Example: asynchronous Jacobi linear solver — the sparse-solver application
// class the paper's Section VI claims for partial synchronization
// ("Asynchronous mat-vecs form the core of iterative linear system
// solvers"). Solves the graph-Laplacian-plus-identity system A x = b on the
// simulated cluster: General vs Eager (block-Jacobi inner iterations) vs the
// barrier-free engine (chaotic block-Jacobi, boundary rows pushed
// peer-to-peer).
#include <cstdio>

#include "apps/components.hpp"
#include "apps/jacobi.hpp"
#include "common/options.hpp"
#include "common/string_util.hpp"
#include "graph/generator.hpp"
#include "graph/partitioner.hpp"

using namespace asyncmr;

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);

  graph::PrefAttachConfig config;
  config.num_vertices = static_cast<graph::VertexId>(opts.Scaled(20'000, 2'000));
  config.num_in = 2;
  config.num_out = 2;
  config.locality_window = std::max<graph::VertexId>(8, config.num_vertices / 1000);
  config.max_edge_age = 4 * config.locality_window;
  config.seed = opts.seed;
  const auto g = apps::Symmetrized(graph::PreferentialAttachment(config));
  std::printf("system: A = D + I - Adj over %s (diagonally dominant SPD)\n",
              g.Describe().c_str());

  std::vector<double> b(g.num_vertices());
  Rng rng(opts.seed + 5);
  for (double& v : b) v = rng.NextDouble(-1.0, 1.0);

  const uint32_t k = std::max<uint32_t>(4, g.num_vertices() / 700);
  const auto part = graph::MultilevelPartition(g, k, opts.seed);
  std::printf("partitions: %u (%s)\n\n", k,
              graph::EvaluatePartition(g, part).ToString().c_str());

  apps::JacobiConfig jacobi;

  std::printf("General Jacobi (one mat-vec sweep per job)...\n");
  cluster::SimCluster general_cluster(cluster::ClusterSpec::Ec2Large8());
  const auto general = apps::GeneralJacobi(general_cluster, g, b, part, jacobi);
  std::printf("  %u global iterations, %s virtual, ||Ax-b||inf = %.2e\n\n",
              general.trace.global_iterations(),
              HumanSeconds(general.trace.total_seconds()).c_str(),
              general.residual_inf);

  std::printf("Eager Jacobi (block solves to local convergence per gmap)...\n");
  cluster::SimCluster eager_cluster(cluster::ClusterSpec::Ec2Large8());
  const auto eager = apps::EagerJacobi(eager_cluster, g, b, part, jacobi);
  std::printf("  %u global iterations (+%s partial syncs), %s virtual, "
              "||Ax-b||inf = %.2e\n\n",
              eager.trace.global_iterations(),
              WithThousands(eager.trace.total_local_iterations()).c_str(),
              HumanSeconds(eager.trace.total_seconds()).c_str(),
              eager.residual_inf);

  std::printf("Async Jacobi (barrier-free chaotic block-Jacobi)...\n");
  cluster::SimCluster async_cluster(cluster::ClusterSpec::Ec2Large8());
  async::AsyncResult stats;
  const auto async_result = apps::AsyncJacobi(async_cluster, g, b, part, jacobi,
                                              async::kUnboundedStaleness, &stats);
  std::printf("  %s worker iterations, %s virtual (%s merge ops charged), "
              "||Ax-b||inf = %.2e\n\n",
              WithThousands(stats.total_iterations).c_str(),
              HumanSeconds(stats.seconds()).c_str(),
              WithThousands(stats.total_merge_ops).c_str(),
              async_result.residual_inf);

  std::printf("speedup: eager %.1fx, async %.1fx over general\n\n",
              general.trace.total_seconds() / eager.trace.total_seconds(),
              general.trace.total_seconds() / stats.seconds());

  // --- fault injection: the same solve on a crashy cluster -------------------
  // Workers checkpoint every few iterations (write-behind through the DFS
  // cost model) and a crashed worker restarts from its last durable snapshot
  // with a bumped epoch (ClusterSpec::worker_crash_rate — see README
  // "Fault tolerance"). The run must converge to the same solution; the
  // overhead is restart downtime plus rolled-back progress.
  std::printf("Async Jacobi again, with worker crashes injected...\n");
  auto crashy_spec = cluster::ClusterSpec::Ec2Large8();
  crashy_spec.worker_crash_rate = 2.0 / k;  // ~2 crashes per virtual second
  crashy_spec.worker_restart_delay_s = 0.25;
  cluster::SimCluster crashy_cluster(crashy_spec);
  async::AsyncResult crashy_stats;
  const auto crashy_result = apps::AsyncJacobi(crashy_cluster, g, b, part, jacobi,
                                               async::kUnboundedStaleness,
                                               &crashy_stats);
  std::printf("  %u worker crashes, %u checkpoints (%s), %s recovery time\n",
              crashy_stats.worker_restarts, crashy_stats.checkpoints_written,
              HumanBytes(crashy_stats.checkpoint_bytes).c_str(),
              HumanSeconds(crashy_stats.recovery_seconds).c_str());
  std::printf("  %s virtual (+%.0f%% over the clean run), converged=%s, "
              "||Ax-b||inf = %.2e\n",
              HumanSeconds(crashy_stats.seconds()).c_str(),
              100.0 * (crashy_stats.seconds() / stats.seconds() - 1.0),
              crashy_result.converged ? "yes" : "NO", crashy_result.residual_inf);
  return 0;
}

// Example: Single-Source Shortest Path over a transaction-style network —
// the paper's second application ("networks of financial transactions,
// citation graphs ... require computation of results in reasonable
// (interactive) times"). Compares one-hop-per-job Bellman-Ford (General)
// with Eager partition-local relaxation, validated against Dijkstra.
#include <cstdio>

#include "apps/app_common.hpp"
#include "apps/sssp.hpp"
#include "common/options.hpp"
#include "common/string_util.hpp"
#include "graph/generator.hpp"
#include "graph/partitioner.hpp"

using namespace asyncmr;

int main(int argc, char** argv) {
  const auto opts = BenchOptions::FromEnv(argc, argv);

  graph::PrefAttachConfig config;
  config.num_vertices = static_cast<graph::VertexId>(opts.Scaled(30'000, 2'000));
  config.num_in = 3;
  config.num_out = 3;
  config.locality_window = std::max<graph::VertexId>(8, config.num_vertices / 1000);
  config.max_edge_age = 4 * config.locality_window;
  config.seed = opts.seed;
  const auto g =
      graph::WithRandomWeights(graph::PreferentialAttachment(config), 1.0, 10.0,
                               opts.seed + 7);
  std::printf("network: %s, random edge weights in [1, 10)\n", g.Describe().c_str());

  const uint32_t k = std::max<uint32_t>(4, g.num_vertices() / 700);
  const auto part = graph::MultilevelPartition(g, k, opts.seed);
  std::printf("partitions: %u (%s)\n\n", k,
              graph::EvaluatePartition(g, part).ToString().c_str());

  apps::SsspConfig sssp;
  sssp.source = 0;

  std::printf("General SSSP (one relaxation sweep per job)...\n");
  cluster::SimCluster general_cluster(cluster::ClusterSpec::Ec2Large8());
  const auto general = apps::GeneralSssp(general_cluster, g, part, sssp);
  std::printf("  %u global iterations, %s virtual time\n\n",
              general.trace.global_iterations(),
              HumanSeconds(general.trace.total_seconds()).c_str());

  std::printf("Eager SSSP (all paths within a sub-graph per gmap)...\n");
  cluster::SimCluster eager_cluster(cluster::ClusterSpec::Ec2Large8());
  const auto eager = apps::EagerSssp(eager_cluster, g, part, sssp);
  std::printf("  %u global iterations, %s virtual time\n\n",
              eager.trace.global_iterations(),
              HumanSeconds(eager.trace.total_seconds()).c_str());

  const auto oracle = apps::SerialDijkstra(g, sssp.source);
  uint64_t reached = 0;
  double max_err = 0;
  double max_dist = 0;
  for (size_t v = 0; v < oracle.size(); ++v) {
    if (oracle[v] == apps::kInfDistance) continue;
    ++reached;
    max_dist = std::max(max_dist, oracle[v]);
    max_err = std::max(max_err, std::abs(eager.distances[v] - oracle[v]));
  }
  std::printf("correctness: %s of %s vertices reachable, max error vs Dijkstra %.1e\n",
              WithThousands(reached).c_str(), WithThousands(oracle.size()).c_str(),
              max_err);
  std::printf("graph weighted eccentricity from source: %.1f\n", max_dist);
  std::printf("speedup: %.1fx (%u -> %u global synchronizations)\n",
              general.trace.total_seconds() / eager.trace.total_seconds(),
              general.trace.global_iterations(), eager.trace.global_iterations());
  return 0;
}
